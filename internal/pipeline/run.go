package pipeline

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"dedukt/internal/dna"
	"dedukt/internal/fastq"
	"dedukt/internal/fault"
	"dedukt/internal/gpusim"
	"dedukt/internal/kcount"
	"dedukt/internal/kernels"
	"dedukt/internal/mpisim"
	"dedukt/internal/obs"
)

// rankOutcome collects one rank's contribution to the global result.
type rankOutcome struct {
	parse, count time.Duration // modeled compute time
	stage        time.Duration // host↔device staging legs of the exchange
	itemsSent    uint64
	payloadSent  uint64
	counted      uint64
	distinct     uint64
	hist         kcount.Histogram
	top          []kcount.KV
	table        *kcount.Table
	parseOps     uint64
	countOps     uint64
	parseSt      gpusim.KernelStats
	countSt      gpusim.KernelStats
	rounds       int
	incomplete   bool // a round degraded past its retry budget
	ckpts        int  // round checkpoints this seat persisted
	recovered    bool // this seat completed at least one shrink recovery
	deadRanks    []int
	replays      int // shrink recoveries this seat went through
}

// Run executes the configured pipeline over the reads and returns the
// global result. The reads are partitioned across ranks by balanced base
// count (the paper's parallel-I/O assumption, §IV-D).
//
// Failures are structured, never a panic or deadlock: a rank death
// (injected or real) poisons the communicator and surfaces as an error
// joining every rank's failure (see mpisim.Run); a corrupted or dropped
// exchange is retried up to Config.MaxRetries times and, past that budget,
// degrades the run to a partial result with Result.Incomplete set and the
// per-rank damage in Result.Faults.
func Run(cfg Config, reads []fastq.Record) (*Result, error) {
	if err := validateRun(cfg); err != nil {
		return nil, err
	}
	if cfg.Ckpt.Dir != "" {
		return nil, fmt.Errorf("pipeline: checkpointing needs the streaming cursor protocol; use RunStream")
	}
	var destMap []uint16
	if cfg.BalancedPartition {
		destMap = buildBalancedMap(cfg, reads)
	}
	p := cfg.Layout.Ranks()
	parts := fastq.Partition(reads, p)
	sources := make([]chunkSource, p)
	bloomBases := make([]int, p)
	var totalBases uint64
	for r, part := range parts {
		for _, rd := range part {
			bloomBases[r] += len(rd.Seq)
		}
		totalBases += uint64(bloomBases[r])
		sources[r] = &sliceChunker{reads: part, maxBases: cfg.RoundBases}
	}
	spl, err := maybeSpill(cfg)
	if err != nil {
		return nil, err
	}
	res, err := runWorld(cfg, destMap, sources, bloomBases, nil, nil, nil, spl)
	if err != nil {
		return nil, err
	}
	res.InputReads = uint64(len(reads))
	res.InputBases = totalBases
	return res, nil
}

// maybeSpill builds the shared out-of-core spill state when configured.
func maybeSpill(cfg Config) (*spillCtl, error) {
	if cfg.Spill.Dir == "" {
		return nil, nil
	}
	return newSpillCtl(cfg)
}

// validateRun is the config validation shared by Run and RunStream.
func validateRun(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if cfg.Canonical && cfg.Mode == SupermerMode {
		return fmt.Errorf("pipeline: canonical counting is supported in kmer mode only")
	}
	return nil
}

// runWorld is the engine shared by Run, RunStream and ResumeStream: it
// spins up the simulated world with one chunk producer per rank and
// aggregates the rank outcomes. sources feeds each rank's round loop (a
// preloaded partition for Run, handles on a shared bounded producer for
// the streaming paths); bloomBases, when non-nil, gives each rank's
// expected input bases for singleton-filter sizing (unknown when
// streaming, which is why RunStream rejects FilterSingletons).
//
// seats, when non-nil, is a resumed world (possibly smaller than the
// layout after earlier shrinks); nil means the identity world. ck
// enables periodic checkpointing and rv in-place shrink recovery; with
// rv set, a rank death no longer fails the run — survivors shrink the
// communicator, replay from the last checkpoint, and the dead ranks'
// expected failures are absorbed below.
func runWorld(cfg Config, destMap []uint16, sources []chunkSource, bloomBases []int, seats []*rankSeat, ck *ckptCtl, rv *recoverRT, spl *spillCtl) (*Result, error) {
	nOrig := cfg.Layout.Ranks()
	inj, err := fault.New(cfg.Fault, nOrig)
	if err != nil {
		return nil, err
	}
	outcomes := make([]rankOutcome, nOrig)
	if seats == nil {
		seats = make([]*rankSeat, nOrig)
		for r := range seats {
			seats[r] = identitySeat(r, nOrig)
		}
	}

	start := time.Now()
	opt := mpisim.Options{
		Deadline: cfg.ExchangeDeadline, Obs: cfg.Obs,
		WireTime: cfg.WireTime, WireMsg: cfg.WireMsg,
		RanksPerNode: cfg.Layout.Net.RanksPerNode,
	}
	trace, errs, err := mpisim.RunRanks(len(seats), opt, func(c *mpisim.Comm) error {
		// The seat and source are bound to the starting slot; both stay
		// with this goroutine when a shrink renumbers the communicator.
		seat := seats[c.Rank()]
		src := sources[c.Rank()]
		out := &outcomes[seat.old]
		out.incomplete = seat.degraded
		bases := 0
		if bloomBases != nil {
			bases = bloomBases[c.Rank()]
		}
		var rsp *rankSpill
		if spl != nil {
			rsp = spl.rank(seat.old)
		}
		for {
			var err error
			if cfg.Layout.GPU != nil {
				err = runGPURank(cfg, destMap, inj, c, src, seat, ck, rsp, out)
			} else {
				err = runCPURank(cfg, destMap, inj, c, src, bases, seat, ck, rsp, out)
			}
			if err == nil {
				return nil
			}
			if rv == nil || !errors.Is(err, mpisim.ErrPeerDead) {
				return err
			}
			// A peer died mid-run and recovery is enabled: shrink,
			// reload the last checkpoint, replay. Another death during
			// the recovery itself surfaces as ErrPeerDead again and
			// loops into a further shrink — each attempt loses at least
			// one rank, so the loop terminates.
			for {
				rerr := rv.shrinkReload(c, seat, out)
				if rerr == nil {
					break
				}
				if !errors.Is(rerr, mpisim.ErrPeerDead) {
					return rerr
				}
			}
		}
	})
	wall := time.Since(start)
	if err != nil {
		return nil, err
	}
	if err := absorbRankErrors(seats, outcomes, errs); err != nil {
		return nil, err
	}
	res := aggregate(cfg, trace, outcomes, wall)
	res.Faults = inj.Snapshot()
	if cfg.Obs != nil {
		registerRunMetrics(cfg.Obs.Registry(), res)
		inj.RegisterMetrics(cfg.Obs.Registry())
	}
	return res, nil
}

// absorbRankErrors decides whether the world's per-slot outcomes add up
// to a successful run. Without recovery every failure is fatal
// (RunWithOptions semantics). After a shrink recovery the dead ranks'
// own failures are expected — the survivors completed the full
// computation on their behalf — so a failure is absorbed exactly when
// some seat recovered and the failing slot's original rank is in the
// agreed dead set. Any other failure (or all ranks failing) still fails
// the run.
func absorbRankErrors(seats []*rankSeat, outcomes []rankOutcome, errs []error) error {
	dead := map[int]bool{}
	anyRecovered := false
	for i := range outcomes {
		if outcomes[i].recovered {
			anyRecovered = true
			for _, d := range outcomes[i].deadRanks {
				dead[d] = true
			}
		}
	}
	var joined []error
	for slot, e := range errs {
		if e == nil {
			continue
		}
		if anyRecovered && dead[seats[slot].old] {
			continue
		}
		joined = append(joined, fmt.Errorf("rank %d: %w", seats[slot].old, e))
	}
	return errors.Join(joined...)
}

// registerRunMetrics publishes the run's headline numbers into the shared
// metrics registry so `-metrics-out` and scrapers see the pipeline beside
// the mpisim/gpusim/fault series. Counters accumulate across runs sharing
// one recorder; gauges reflect the latest run.
func registerRunMetrics(reg *obs.Registry, res *Result) {
	reg.Counter("pipeline_items_exchanged_total", "Exchanged units (k-mers or supermers) across all ranks and rounds.").Add(res.ItemsExchanged)
	reg.Counter("pipeline_payload_bytes_total", "Exchanged payload volume including supermer length bytes.").Add(res.PayloadBytes)
	reg.Counter("pipeline_kmers_counted_total", "Counted k-mer instances.").Add(res.TotalKmers)
	reg.Gauge("pipeline_distinct_kmers", "Distinct k-mers in the counted spectrum.").Set(float64(res.DistinctKmers))
	reg.Gauge("pipeline_rounds", "Parse-exchange-count rounds executed.").Set(float64(res.Rounds))
	reg.Gauge("pipeline_load_imbalance", "Max/avg of per-rank counted k-mers (Table III).").Set(res.LoadImbalance())
	incomplete := 0.0
	if res.Incomplete {
		incomplete = 1
	}
	reg.Gauge("pipeline_incomplete", "1 when a round degraded past its retry budget (counts are a lower bound).").Set(incomplete)
	reg.Counter("pipeline_ckpt_rounds_total", "Round checkpoints persisted.").Add(uint64(res.Checkpoints))
	recovered := uint64(0)
	if res.Recovered {
		recovered = 1
	}
	reg.Counter("pipeline_recovery_shrinks_total", "Runs completed through shrink recovery after rank death.").Add(recovered)
	reg.Gauge("pipeline_recovery_dead_ranks", "Ranks lost (and absorbed by survivors) during the latest run.").Set(float64(len(res.DeadRanks)))
	for phase, d := range map[string]time.Duration{
		"parse":    res.Modeled.Parse,
		"exchange": res.Modeled.Exchange,
		"count":    res.Modeled.Count,
	} {
		reg.Gauge("pipeline_phase_seconds", "Summit-projected phase time (bulk-synchronous: slowest rank).", obs.L("phase", phase)).Set(d.Seconds())
	}
}

// gpuRoundState is one parity's pooled round scratch for the GPU rank body:
// the staged base buffer, the kernel packing scratch, the round's send
// buffers (views into the kernel scratch) and its posted exchange. Two of
// these double-buffer the overlapped schedule; the serial schedule just
// alternates between them.
type gpuRoundState struct {
	buf       dna.SeqBuffer
	parse     kernels.ParseScratch
	sup       kernels.SupermerScratch
	sendWords [][]uint64
	sendWire  [][]byte
	routedW   [][]uint64
	routedB   [][]byte
	bytesOut  uint64
	pend      *pendingExchange
	recvWords [][]uint64
	recvWire  [][]byte
	roundRecv uint64
}

// seedAtomicTable preloads checkpointed spectrum slices into a fresh
// atomic table sized for them.
func seedAtomicTable(seed []*kcount.Database, load float64, prob kcount.Probing) (*kcount.AtomicTable, error) {
	n := 1
	for _, db := range seed {
		n += db.Len()
	}
	t := kcount.NewAtomicTable(n, load, prob)
	for _, db := range seed {
		for _, e := range db.Entries {
			if _, _, err := t.Add(e.Key, e.Count); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}

func runGPURank(cfg Config, destMap []uint16, inj *fault.Injector, c *mpisim.Comm, src chunkSource, seat *rankSeat, ck *ckptCtl, rsp *rankSpill, out *rankOutcome) error {
	dev := gpusim.MustDevice(*cfg.Layout.GPU)
	if cfg.Obs != nil {
		dev.Observe(cfg.Obs.Registry())
	}
	rec := cfg.Obs
	rank := seat.old
	table, err := seedAtomicTable(seat.seed, cfg.tableLoad(), cfg.Probing)
	if err != nil {
		return err
	}
	wire := kernels.SupermerWire{K: cfg.K, Window: cfg.Window}
	ex := newExchanger(&cfg, c, rank, inj, out)
	var states [2]gpuRoundState

	// Round-start faults fire once per executed round, before its parse.
	start := func(r int) error {
		return killOrStall(inj, rank, r, rec)
	}

	// Stage + parse: pull the round's chunk, build its concatenated base
	// buffer, model its host→device transfer, and run the parse (or
	// supermer) kernel into the parity slot's packing scratch.
	parse := func(r int) (bool, error) {
		st := &states[r%2]
		recs, more, err := src.nextChunk()
		if err != nil {
			return false, err
		}
		st.buf.Reset()
		for _, rd := range recs {
			st.buf.AppendRead(rd.Seq)
		}
		data := st.buf.Data()
		if !cfg.GPUDirect {
			// The input bases bounce through a pinned host staging buffer
			// before the kernel sees them. Under GPUDirect the reads stream
			// straight into device memory, so the leg vanishes entirely —
			// no stage_h2d span, no modeled staging time.
			sp := rec.Begin(rank, r, obs.PhaseStageH2D)
			h2dIn := dev.Config().TransferTime(int64(len(data)))
			out.stage += h2dIn
			sp.End(h2dIn, uint64(len(data)))
		}

		sp := rec.Begin(rank, r, obs.PhaseParse)
		var parseSt gpusim.KernelStats
		// Destinations are always the ORIGINAL world: the key→rank map
		// never changes across shrinks (checkpointed slices stay valid);
		// the seat folds dead destinations onto survivors at post time.
		if cfg.Mode == KmerMode {
			st.sendWords, parseSt, err = kernels.ParseKmers(dev, kernels.ParseConfig{
				Enc: cfg.Enc, K: cfg.K, NumDest: seat.nOrig, Canonical: cfg.Canonical,
			}, data, &st.parse)
		} else {
			st.sendWire, parseSt, err = kernels.BuildSupermers(dev, kernels.SupermerConfig{
				Enc: cfg.Enc, C: cfg.minimizerConfig(), NumDest: seat.nOrig, DestMap: destMap,
			}, data, &st.sup)
		}
		if err != nil {
			sp.End(0, 0)
			return false, err
		}
		kt := dev.Config().KernelTime(&parseSt)
		out.parse += kt
		out.parseOps += parseSt.ComputeOps
		out.parseSt.Add(parseSt)

		var bytesOut, roundSent uint64
		if cfg.Mode == KmerMode {
			for _, part := range st.sendWords {
				roundSent += uint64(len(part))
				bytesOut += 8 * uint64(len(part))
			}
		} else {
			for _, part := range st.sendWire {
				roundSent += uint64(len(part) / wire.Stride())
				bytesOut += uint64(len(part))
			}
		}
		st.bytesOut = bytesOut
		out.itemsSent += roundSent
		out.payloadSent += bytesOut
		sp.End(kt, roundSent)
		return more, nil
	}

	// Post: announce counts (carrying the end-of-stream more flag) and
	// ship the round's framed payloads with nonblocking collectives
	// (errors surface at finish time).
	post := func(r int, more bool) error {
		st := &states[r%2]
		if cfg.Mode == KmerMode {
			st.pend = ex.postWords(r, seat.route(st.sendWords, &st.routedW), more)
		} else {
			st.pend = ex.postWire(r, wire, seat.routeBytes(st.sendWire, &st.routedB), more)
		}
		return nil
	}

	// Finish: complete the exchange (verify, retry, settle) and model the
	// host staging legs unless GPUDirect. The received parts stay in the
	// parity slot for count.
	finish := func(r int) (bool, error) {
		st := &states[r%2]
		pend := st.pend
		st.pend = nil
		var (
			bytesIn  uint64
			incoming int
			anyMore  bool
			err      error
		)
		if cfg.Mode == KmerMode {
			st.recvWords, anyMore, err = ex.finishWords(pend)
			if err != nil {
				return false, err
			}
			for _, part := range st.recvWords {
				bytesIn += 8 * uint64(len(part))
				incoming += len(part)
			}
		} else {
			st.recvWire, anyMore, err = ex.finishWire(pend)
			if err != nil {
				return false, err
			}
			for _, part := range st.recvWire {
				bytesIn += uint64(len(part))
				incoming += len(part) / wire.Stride()
			}
		}
		st.roundRecv = uint64(incoming)
		var stage time.Duration
		if !cfg.GPUDirect {
			stage = dev.Config().TransferTime(int64(st.bytesOut)) + dev.Config().TransferTime(int64(bytesIn))
			out.stage += stage
		}
		pend.sp.End(stage, st.roundRecv)
		return anyMore, nil
	}

	// Count: insert the round's received parts into this rank's table
	// partition in place, growing it between rounds when needed. In spill
	// mode (pass 1) the verified parts are appended to the rank's disk
	// bins instead and the insert is deferred to the per-bin pass below.
	count := func(r int) error {
		st := &states[r%2]
		if rsp != nil {
			sp := rec.Begin(rank, r, obs.PhaseSpill)
			var (
				n   uint64
				err error
			)
			if cfg.Mode == KmerMode {
				n, err = rsp.spillWords(st.recvWords)
			} else {
				n, err = rsp.spillWire(wire, cfg.minimizerConfig(), st.recvWire)
			}
			if err != nil {
				sp.End(0, 0)
				return err
			}
			sp.End(0, n)
			return nil
		}
		incoming := int(st.roundRecv)
		sp := rec.Begin(rank, r, obs.PhaseCount)
		var (
			countSt gpusim.KernelStats
			err     error
		)
		if cfg.Mode == KmerMode {
			table, err = ensureCapacity(table, incoming, cfg.tableLoad(), cfg.Probing)
			if err != nil {
				sp.End(0, 0)
				return err
			}
			countSt, err = kernels.CountKmers(dev, table, st.recvWords)
		} else {
			table, err = ensureCapacity(table, incoming*cfg.Window, cfg.tableLoad(), cfg.Probing)
			if err != nil {
				sp.End(0, 0)
				return err
			}
			countSt, err = kernels.CountSupermers(dev, table, wire, st.recvWire)
		}
		if err != nil {
			sp.End(0, 0)
			return err
		}
		out.count += dev.Config().KernelTime(&countSt)
		out.countOps += countSt.ComputeOps
		out.countSt.Add(countSt)
		sp.End(dev.Config().KernelTime(&countSt), st.roundRecv)
		return nil
	}

	hooks := roundHooks{start: start, parse: parse, post: post, finish: finish, count: count}
	if ck != nil {
		hooks.ckptAt = ck.at
		hooks.ckpt = func(r int) error {
			// table is reassigned by ensureCapacity; snapshot the current
			// one at checkpoint time.
			return ck.write(c, seat, r, kcount.FromTable(table.Snapshot(), cfg.K, ck.flags), out)
		}
	}
	rounds, err := runRounds(cfg.Overlap, seat.base, hooks)
	if err != nil {
		return err
	}
	out.rounds = rounds

	if rsp != nil {
		return gpuCountBins(cfg, dev, wire, rsp, rec, rank, out)
	}
	snap := table.Snapshot()
	out.counted = snap.TotalCount()
	out.distinct = uint64(snap.Len())
	out.hist = snap.Histogram()
	out.top = snap.TopK(topKPerRank)
	if cfg.KeepTables {
		out.table = snap
	}
	return nil
}

// gpuCountBins is the GPU engine's spill pass 2: seal the rank's bins,
// then count each one into a fresh working-set table — sized for that
// bin alone, never the whole spectrum slice — and fold the bin spectra
// into the outcome. Bins partition the rank's key space, so the fold is
// bit-identical to the single-table path.
func gpuCountBins(cfg Config, dev *gpusim.Device, wire kernels.SupermerWire, rsp *rankSpill, rec *obs.Recorder, rank int, out *rankOutcome) error {
	if err := rsp.seal(); err != nil {
		return err
	}
	acc := kcount.NewBinAccumulator(topKPerRank)
	stride := wire.Stride()
	var words []uint64
	for b := 0; b < rsp.ctl.bins; b++ {
		// Pass-2 spans carry round -1: bin counting happens after the round
		// loop, like recovery (the other round-free phase).
		sp := rec.Begin(rank, -1, obs.PhaseBinCount)
		bt := kcount.NewAtomicTable(1, cfg.tableLoad(), cfg.Probing)
		var (
			binItems   uint64
			binModeled time.Duration
		)
		err := rsp.readBin(b, func(payload []byte, items int) error {
			var (
				countSt gpusim.KernelStats
				err     error
			)
			if cfg.Mode == KmerMode {
				if len(payload) != 8*items {
					return fmt.Errorf("spill record declares %d words for %d payload bytes: %w", items, len(payload), ErrSpillMismatch)
				}
				if cap(words) < items {
					words = make([]uint64, items)
				}
				words = words[:items]
				for i := range words {
					words[i] = leUint64(payload[8*i:])
				}
				bt, err = ensureCapacity(bt, items, cfg.tableLoad(), cfg.Probing)
				if err != nil {
					return err
				}
				countSt, err = kernels.CountKmers(dev, bt, [][]uint64{words})
			} else {
				if len(payload) != items*stride {
					return fmt.Errorf("spill record declares %d images for %d payload bytes (stride %d): %w", items, len(payload), stride, ErrSpillMismatch)
				}
				bt, err = ensureCapacity(bt, items*cfg.Window, cfg.tableLoad(), cfg.Probing)
				if err != nil {
					return err
				}
				countSt, err = kernels.CountSupermers(dev, bt, wire, [][]byte{payload})
			}
			if err != nil {
				return err
			}
			kt := dev.Config().KernelTime(&countSt)
			out.count += kt
			binModeled += kt
			out.countOps += countSt.ComputeOps
			out.countSt.Add(countSt)
			binItems += uint64(items)
			return nil
		})
		if err != nil {
			sp.End(0, 0)
			return err
		}
		acc.AddTable(bt.Snapshot())
		sp.End(binModeled, binItems)
	}
	rsp.cleanup(!out.incomplete)
	out.counted = acc.Total()
	out.distinct = acc.Distinct()
	out.hist = acc.Histogram()
	out.top = acc.TopK()
	return nil
}

// topKPerRank bounds the per-rank contribution to the global top-k merge.
const topKPerRank = 64

// aggregate folds per-rank outcomes and the communication trace into the
// global Result. Phase times follow the bulk-synchronous rule: a phase ends
// when its slowest rank finishes.
func aggregate(cfg Config, trace []mpisim.TraceEntry, outcomes []rankOutcome, wall time.Duration) *Result {
	res := &Result{
		Name:         fmt.Sprintf("%s/%s", cfg.Layout.Name, cfg.Mode),
		Ranks:        cfg.Layout.Ranks(),
		Nodes:        cfg.Layout.Nodes,
		Mode:         cfg.Mode,
		GPU:          cfg.Layout.GPU != nil,
		Overlap:      cfg.Overlap,
		Wall:         wall,
		Spilled:      cfg.Spill.Dir != "",
		SpillBins:    spillBinsOf(cfg),
		Histogram:    kcount.Histogram{Counts: make(map[uint32]uint64)},
		PerRankKmers: make([]uint64, len(outcomes)),
	}
	var maxParse, maxCount, maxStage time.Duration
	for r := range outcomes {
		o := &outcomes[r]
		if o.parse > maxParse {
			maxParse = o.parse
		}
		if o.count > maxCount {
			maxCount = o.count
		}
		if o.stage > maxStage {
			maxStage = o.stage
		}
		if o.rounds > res.Rounds {
			res.Rounds = o.rounds
		}
		if o.incomplete {
			res.Incomplete = true
		}
		if o.ckpts > res.Checkpoints {
			res.Checkpoints = o.ckpts
		}
		if o.recovered {
			res.Recovered = true
		}
		res.ItemsExchanged += o.itemsSent
		res.PayloadBytes += o.payloadSent
		res.TotalKmers += o.counted
		res.DistinctKmers += o.distinct
		res.PerRankKmers[r] = o.counted
		res.Histogram.Merge(o.hist)
		res.TopKmers = append(res.TopKmers, o.top...)
		res.ParseCompute += o.parseOps
		res.CountCompute += o.countOps
		res.GPUParse.Add(o.parseSt)
		res.GPUCount.Add(o.countSt)
		if cfg.KeepTables {
			res.Tables = append(res.Tables, o.table)
		}
	}
	// Ranks own disjoint k-mer partitions, so the global top-k is a merge
	// of the per-rank top lists.
	sort.Slice(res.TopKmers, func(i, j int) bool {
		if res.TopKmers[i].Count != res.TopKmers[j].Count {
			return res.TopKmers[i].Count > res.TopKmers[j].Count
		}
		return res.TopKmers[i].Key < res.TopKmers[j].Key
	})
	if len(res.TopKmers) > topKPerRank {
		res.TopKmers = res.TopKmers[:topKPerRank]
	}
	res.DeadRanks = mergeDead(outcomes)
	res.Modeled.Parse = maxParse
	res.Modeled.Count = maxCount

	var fabric time.Duration
	for _, e := range trace {
		if e.Bytes == nil {
			continue
		}
		t := cfg.Layout.Net.CollectiveTime(e.Bytes)
		fabric += t
		if e.Op == "alltoallv" {
			res.AlltoallvTime += t
			vs := cfg.Layout.Net.Volumes(e.Bytes)
			res.Volume.TotalBytes += vs.TotalBytes
			res.Volume.FabricBytes += vs.FabricBytes
			if vs.MaxNodeBytes > res.Volume.MaxNodeBytes {
				res.Volume.MaxNodeBytes = vs.MaxNodeBytes
			}
		}
	}
	res.Modeled.Exchange = maxStage + fabric
	return res
}
