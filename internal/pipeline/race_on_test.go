//go:build race

package pipeline

// raceDetectorEnabled mirrors the -race build tag so allocation-budget
// tests can skip themselves: the race runtime allocates per goroutine and
// per sync operation, which swamps the budgets those tests pin.
const raceDetectorEnabled = true
