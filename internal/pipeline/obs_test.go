package pipeline

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"dedukt/internal/fault"
	"dedukt/internal/obs"
)

// TestTracedRunSpanInvariants drives a multi-round run with injected
// stragglers and drops and checks the recorded timeline: exactly one span
// per rank × round × phase, non-negative monotonic timing, retry spans
// nested inside their round's exchange span, and fault/retry instants
// present. Run under -race this also exercises the recorder's concurrency
// (every rank goroutine records into it simultaneously).
func TestTracedRunSpanInvariants(t *testing.T) {
	reads := testReads(t, 12_000, 6)
	cfg := Default(smallGPULayout(1), SupermerMode)
	cfg.RoundBases = 4_000 // force several rounds
	cfg.Fault = fault.Config{Seed: 3, Delay: 0.15, DelayFor: 200 * time.Microsecond, Drop: 0.08}
	rec := obs.NewRecorder(cfg.Layout.Ranks())
	cfg.Obs = rec

	res, err := Run(cfg, reads)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, cfg, reads, res)
	if res.Rounds < 2 {
		t.Fatalf("rounds = %d, want ≥ 2 (shrink RoundBases)", res.Rounds)
	}

	phases := []string{obs.PhaseParse, obs.PhaseStageH2D, obs.PhaseExchange, obs.PhaseCount}
	type key struct {
		rank, round int
		phase       string
	}
	count := map[key]int{}
	exchange := map[[2]int]obs.Span{}
	for _, s := range rec.Spans() {
		if s.Start < 0 || s.Dur < 0 {
			t.Fatalf("span %+v has negative timing", s)
		}
		if s.Phase == obs.PhaseRetry {
			continue // checked against their exchange spans below
		}
		count[key{s.Rank, s.Round, s.Phase}]++
		if s.Phase == obs.PhaseExchange {
			exchange[[2]int{s.Rank, s.Round}] = s
		}
	}
	for rank := 0; rank < res.Ranks; rank++ {
		for round := 0; round < res.Rounds; round++ {
			for _, ph := range phases {
				if got := count[key{rank, round, ph}]; got != 1 {
					t.Fatalf("rank %d round %d phase %s: %d spans, want 1", rank, round, ph, got)
				}
			}
		}
	}

	var retrySpans int
	for _, s := range rec.Spans() {
		if s.Phase != obs.PhaseRetry {
			continue
		}
		retrySpans++
		enc, ok := exchange[[2]int{s.Rank, s.Round}]
		if !ok {
			t.Fatalf("retry span %+v has no enclosing exchange span", s)
		}
		if s.Start < enc.Start || s.Start+s.Dur > enc.Start+enc.Dur {
			t.Fatalf("retry span [%v,%v) escapes exchange span [%v,%v) (rank %d round %d)",
				s.Start, s.Start+s.Dur, enc.Start, enc.Start+enc.Dur, s.Rank, s.Round)
		}
	}

	events := map[string]int{}
	for _, i := range rec.Instants() {
		events[i.Name]++
	}
	tf := res.TotalFaults()
	if got := events[obs.EvDrop]; uint64(got) != tf.Dropped {
		t.Fatalf("drop instants = %d, injector dropped %d", got, tf.Dropped)
	}
	if got := events[obs.EvDelay]; uint64(got) != tf.Delayed {
		t.Fatalf("delay instants = %d, injector delayed %d", got, tf.Delayed)
	}
	if got := events[obs.EvRetry]; uint64(got) != tf.Retries {
		t.Fatalf("retry instants = %d, injector retries %d", got, tf.Retries)
	}
	if tf.Retries > 0 && retrySpans == 0 {
		t.Fatal("rounds retried but no retry spans recorded")
	}

	// The exported trace must be loadable JSON with one thread per rank.
	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tf2 struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Tid int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf2); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	threads := map[int]bool{}
	for _, ev := range tf2.TraceEvents {
		if ev.Ph == "X" {
			threads[ev.Tid] = true
		}
	}
	if len(threads) != res.Ranks {
		t.Fatalf("trace threads = %d, want %d", len(threads), res.Ranks)
	}
}

// TestTracedRunMetrics checks the run-level metric export: the registry
// carries the pipeline, gpusim and fault families after a traced run.
func TestTracedRunMetrics(t *testing.T) {
	reads := testReads(t, 8_000, 4)
	cfg := Default(smallGPULayout(1), SupermerMode)
	cfg.Fault = fault.Config{Seed: 1, Drop: 0.05}
	rec := obs.NewRecorder(cfg.Layout.Ranks())
	cfg.Obs = rec

	res, err := Run(cfg, reads)
	if err != nil {
		t.Fatal(err)
	}
	var sb bytes.Buffer
	if err := rec.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE pipeline_items_exchanged_total counter",
		"# TYPE pipeline_load_imbalance gauge",
		"# TYPE mpisim_collectives_total counter",
		`mpisim_collective_bytes_total{op="alltoallv"}`,
		`gpusim_kernel_launches_total{kernel=`,
		`fault_injected_total{kind="drop"}`,
		`pipeline_phase_seconds{phase="exchange"}`,
	} {
		if !bytes.Contains(sb.Bytes(), []byte(want)) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
	_ = res
}
