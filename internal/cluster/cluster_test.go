package cluster

import (
	"testing"
	"time"

	"dedukt/internal/gpusim"
)

func TestLayouts(t *testing.T) {
	g := SummitGPU(64)
	if g.Ranks() != 384 {
		t.Fatalf("GPU ranks = %d, want 384", g.Ranks())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	c := SummitCPU(64)
	if c.Ranks() != 2688 {
		t.Fatalf("CPU ranks = %d, want 2688", c.Ranks())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLayoutValidation(t *testing.T) {
	bad := Layout{Name: "x", Nodes: 0, RanksPerNode: 6}
	if bad.Validate() == nil {
		t.Error("zero nodes should fail")
	}
	both := SummitGPU(1)
	cpu := Power9()
	both.CPU = &cpu
	if both.Validate() == nil {
		t.Error("both models should fail")
	}
	neither := SummitGPU(1)
	neither.GPU = nil
	if neither.Validate() == nil {
		t.Error("no model should fail")
	}
	badGPU := SummitGPU(1)
	cfg := gpusim.V100()
	cfg.NumSMs = 0
	badGPU.GPU = &cfg
	if badGPU.Validate() == nil {
		t.Error("invalid GPU config should fail")
	}
}

func TestCPUModelRankTime(t *testing.T) {
	m := Power9()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Compute-bound: 7.675e9 ops at 3.07 GHz × 2.5 IPC = 1 s.
	ops := uint64(m.ClockGHz * 1e9 * m.IPC)
	got := m.RankTime(ops, 0, 0)
	if got < 990*time.Millisecond || got > 1010*time.Millisecond {
		t.Fatalf("compute-bound rank time %v, want ~1s", got)
	}
	// Memory-bound: per-rank share is 340/42 GB/s.
	share := m.MemBandwidthGBs * 1e9 / float64(m.CoresPerNode)
	got = m.RankTime(0, uint64(share), 0)
	if got < 990*time.Millisecond || got > 1010*time.Millisecond {
		t.Fatalf("memory-bound rank time %v, want ~1s", got)
	}
	if m.RankTime(0, 0, 0) != 0 {
		t.Fatal("zero work should cost zero")
	}
	bad := CPUModel{}
	if bad.Validate() == nil {
		t.Fatal("zero model should be invalid")
	}
}

func TestCPUModelItemCostCalibration(t *testing.T) {
	// The power law must hit the paper's two published operating points
	// within tolerance: ≈4.5 µs/k-mer at 0.6 M k-mers/rank (Fig. 6a) and
	// ≈23 µs/k-mer at 62 M k-mers/rank (Fig. 3a).
	m := Power9()
	small := m.ItemCostNs(613_000)
	if small < 3_000 || small > 6_500 {
		t.Fatalf("item cost at 0.6M = %.0f ns, want ≈4500", small)
	}
	big := m.ItemCostNs(62_000_000)
	if big < 18_000 || big > 30_000 {
		t.Fatalf("item cost at 62M = %.0f ns, want ≈23000", big)
	}
	if m.ItemCostNs(0) != 0 {
		t.Fatal("zero items should cost zero")
	}
	// Per-item overhead dominates the op/bandwidth terms at real loads.
	items := uint64(1_000_000)
	withItems := m.RankTime(0, 0, items)
	if withItems < time.Duration(float64(items)*m.ItemCostNs(items))*time.Nanosecond {
		t.Fatal("item overhead not charged")
	}
}

func TestNodeComputeRatioInPaperRange(t *testing.T) {
	// Whole-node abstract op throughput: 6 V100s vs 42 Power9 cores. The
	// paper measures ~100× kernel acceleration (Fig. 3); our calibration
	// must land within a factor ~2 of that when kernels are compute-bound
	// (memory/atomic rooflines pull the realized ratio further down).
	gpu := gpusim.V100()
	gpuNode := 6 * float64(gpu.NumSMs*gpu.ALULanesPerSM) * gpu.ClockGHz * 1e9
	cpu := Power9()
	cpuNode := float64(cpu.CoresPerNode) * cpu.ClockGHz * 1e9 * cpu.IPC
	ratio := gpuNode / cpuNode
	if ratio < 60 || ratio > 300 {
		t.Fatalf("node compute ratio %.0f outside plausible range for the paper's ~100×", ratio)
	}
}
