// Package cluster describes the machines the experiments model — primarily
// Summit at OLCF (§V-A): IBM AC922 nodes with 2×22-core Power9 CPUs (42
// cores usable for ranks), 6 NVIDIA V100 GPUs, NVLink at 25 GB/s per link,
// and a Mellanox dual-rail EDR fat tree with 23 GB/s per-node injection
// bandwidth.
package cluster

import (
	"fmt"
	"math"
	"time"

	"dedukt/internal/gpusim"
	"dedukt/internal/mpisim"
)

// CPUModel is the scalar cost model for CPU-rank computation: the CPU
// pipelines execute real Go code and account abstract ops and touched bytes
// with the same constants as the GPU kernels; this model converts them to
// seconds on a Power9 core.
type CPUModel struct {
	// ClockGHz is the core clock.
	ClockGHz float64
	// IPC is the effective (sustained) abstract ops per cycle on this
	// pointer-chasing, hash-heavy workload.
	IPC float64
	// MemBandwidthGBs is the per-node memory bandwidth, shared by all
	// ranks on the node.
	MemBandwidthGBs float64
	// CoresPerNode is how many ranks share the node's bandwidth.
	CoresPerNode int
	// PerItemBaseNs and PerItemExp calibrate the baseline's measured
	// per-k-mer software overhead: cost_ns(items) = Base · items^Exp,
	// where items is the rank's per-phase k-mer load. The diBELLA-derived
	// baseline the paper measures spends most of its time in multi-round
	// buffer management, Bloom-filter passes and provenance bookkeeping
	// that an abstract op count cannot capture, and its per-k-mer cost
	// grows with per-rank load (memory pressure, extra rounds). The two
	// published operating points — Fig. 6a's ≈11× small-dataset speedups
	// (≈4.5 µs/k-mer at ≈0.6 M k-mers/rank) and Fig. 3a's ≈2,900 s
	// H. sapiens compute (≈23 µs/k-mer at 62 M k-mers/rank) — fix the
	// power law.
	PerItemBaseNs float64
	PerItemExp    float64
}

// Validate reports configuration errors.
func (m CPUModel) Validate() error {
	if m.ClockGHz <= 0 || m.IPC <= 0 || m.MemBandwidthGBs <= 0 || m.CoresPerNode <= 0 ||
		m.PerItemBaseNs < 0 || m.PerItemExp < 0 || m.PerItemExp >= 1 {
		return fmt.Errorf("cluster: invalid CPU model %+v", m)
	}
	return nil
}

// ItemCostNs returns the calibrated per-k-mer overhead at a given per-rank
// per-phase load.
func (m CPUModel) ItemCostNs(items uint64) float64 {
	if items == 0 || m.PerItemBaseNs == 0 {
		return 0
	}
	return m.PerItemBaseNs * math.Pow(float64(items), m.PerItemExp)
}

// RankTime converts one rank's accounted work into seconds: the roofline of
// its op throughput and its share of node memory bandwidth, plus the
// calibrated per-item software overhead at this load.
func (m CPUModel) RankTime(ops, bytes, items uint64) time.Duration {
	return m.RankTimeLifted(ops, bytes, items, 1)
}

// RankTimeLifted is RankTime with the per-item unit cost evaluated at
// items×loadLift instead of items. Scaled-down experiments use the lift to
// evaluate the baseline's load-dependent unit cost at the *real* dataset's
// per-rank load (the operating point the paper measured) while charging it
// for the scaled item count — preserving the paper's time ratios at any
// simulation scale.
func (m CPUModel) RankTimeLifted(ops, bytes, items uint64, loadLift float64) time.Duration {
	compute := float64(ops) / (m.ClockGHz * 1e9 * m.IPC)
	mem := float64(bytes) / (m.MemBandwidthGBs * 1e9 / float64(m.CoresPerNode))
	t := compute
	if mem > t {
		t = mem
	}
	if loadLift < 1 {
		loadLift = 1
	}
	lifted := uint64(float64(items) * loadLift)
	t += float64(items) * m.ItemCostNs(lifted) * 1e-9
	return time.Duration(t * float64(time.Second))
}

// Power9 returns the Summit node CPU model. See CPUModel.PerItemBaseNs for
// the calibration of the per-item power law (39 ns · items^0.357 spans
// ≈4.5 µs at 0.6 M k-mers/rank to ≈23 µs at 62 M k-mers/rank, the paper's
// two published operating points).
func Power9() CPUModel {
	return CPUModel{
		ClockGHz: 3.07, IPC: 2.5, MemBandwidthGBs: 340, CoresPerNode: 42,
		PerItemBaseNs: 39, PerItemExp: 0.357,
	}
}

// Layout is a concrete machine configuration for one run: how many nodes,
// how many ranks per node, and the compute + network models.
type Layout struct {
	// Name labels the layout in reports (e.g. "summit-gpu-64").
	Name string
	// Nodes is the node count.
	Nodes int
	// RanksPerNode is MPI ranks per node (6 for GPU runs, 42 for CPU).
	RanksPerNode int
	// Net is the fabric model.
	Net mpisim.NetModel
	// GPU is non-nil for GPU layouts: the per-rank device.
	GPU *gpusim.Config
	// CPU is non-nil for CPU layouts.
	CPU *CPUModel
}

// Ranks returns the world size.
func (l Layout) Ranks() int { return l.Nodes * l.RanksPerNode }

// Validate reports configuration errors.
func (l Layout) Validate() error {
	if l.Nodes <= 0 || l.RanksPerNode <= 0 {
		return fmt.Errorf("cluster: layout %q has %d nodes × %d ranks", l.Name, l.Nodes, l.RanksPerNode)
	}
	if (l.GPU == nil) == (l.CPU == nil) {
		return fmt.Errorf("cluster: layout %q must have exactly one of GPU or CPU model", l.Name)
	}
	if l.GPU != nil {
		if err := l.GPU.Validate(); err != nil {
			return err
		}
	}
	if l.CPU != nil {
		if err := l.CPU.Validate(); err != nil {
			return err
		}
	}
	return l.Net.Validate()
}

// summitNet returns the Summit fabric model for the given ranks per node.
// Efficiency is calibrated against the paper's measured Alltoallv times
// (see mpisim.NetModel.Efficiency).
func summitNet(ranksPerNode int) mpisim.NetModel {
	return mpisim.NetModel{RanksPerNode: ranksPerNode, InjectionGBs: 23, Efficiency: 0.04, LatencyUs: 2}
}

// SummitGPU returns the paper's GPU configuration: 6 MPI ranks per node,
// one V100 each (§V-A).
func SummitGPU(nodes int) Layout {
	gpu := gpusim.V100()
	return Layout{
		Name:         fmt.Sprintf("summit-gpu-%d", nodes),
		Nodes:        nodes,
		RanksPerNode: 6,
		Net:          summitNet(6),
		GPU:          &gpu,
	}
}

// SummitCPU returns the paper's CPU baseline configuration: 42 ranks per
// node, one Power9 core each.
func SummitCPU(nodes int) Layout {
	cpu := Power9()
	return Layout{
		Name:         fmt.Sprintf("summit-cpu-%d", nodes),
		Nodes:        nodes,
		RanksPerNode: 42,
		Net:          summitNet(42),
		CPU:          &cpu,
	}
}
