package dna

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKmerFromString(t *testing.T) {
	// Lexicographic: GTC -> 10 11 01 = 0b101101 = 45.
	w := MustKmer(&Lexicographic, "GTC")
	if w != 0b101101 {
		t.Fatalf("GTC = %b, want 101101", w)
	}
	if got := w.String(&Lexicographic, 3); got != "GTC" {
		t.Fatalf("round trip = %q", got)
	}
}

func TestKmerOrderMatchesLexOrder(t *testing.T) {
	// Under the lexicographic encoding, packed integer order == string order
	// for equal k. This is the property minimizer selection relies on.
	strs := []string{"AAAA", "AAAC", "AACA", "ACGT", "CAAA", "GGGG", "TTTT"}
	for i := 0; i < len(strs)-1; i++ {
		a := MustKmer(&Lexicographic, strs[i])
		b := MustKmer(&Lexicographic, strs[i+1])
		if a >= b {
			t.Errorf("%s (%d) should pack below %s (%d)", strs[i], a, strs[i+1], b)
		}
	}
}

func TestKmerAppend(t *testing.T) {
	k := 3
	w := MustKmer(&Lexicographic, "GTC")
	w = w.Append(k, Lexicographic.MustEncode('A'))
	if got := w.String(&Lexicographic, k); got != "TCA" {
		t.Fatalf("append A: got %q, want TCA", got)
	}
}

func TestKmerBaseAndSub(t *testing.T) {
	k := 8
	w := MustKmer(&Lexicographic, "GTCATGCA")
	wantBases := "GTCATGCA"
	for i := 0; i < k; i++ {
		if got := Lexicographic.Decode(w.Base(k, i)); got != wantBases[i] {
			t.Errorf("base %d = %q, want %q", i, got, wantBases[i])
		}
	}
	// Sub-k-mers of length 4 (minimizer candidates).
	for i := 0; i+4 <= k; i++ {
		sub := w.Sub(k, i, 4)
		if got := sub.String(&Lexicographic, 4); got != wantBases[i:i+4] {
			t.Errorf("sub(%d,4) = %q, want %q", i, got, wantBases[i:i+4])
		}
	}
}

func TestKmerSubPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustKmer(&Lexicographic, "ACGT").Sub(4, 2, 3)
}

func TestReverseComplement(t *testing.T) {
	cases := map[string]string{
		"ACGT":     "ACGT", // palindrome
		"AAAA":     "TTTT",
		"GTCA":     "TGAC",
		"GATTACA":  "TGTAATC",
		"ACGTACGT": "ACGTACGT",
	}
	for in, want := range cases {
		for _, e := range []*Encoding{&Lexicographic, &Random} {
			w := MustKmer(e, in)
			got := w.ReverseComplement(e, len(in)).String(e, len(in))
			if got != want {
				t.Errorf("%s: rc(%s) = %s, want %s", e.Name(), in, got, want)
			}
		}
	}
}

func TestReverseComplementInvolution(t *testing.T) {
	f := func(raw []byte, kRaw uint8) bool {
		k := int(kRaw%MaxK) + 1
		codes := make([]Code, k)
		for i := range codes {
			if len(raw) > 0 {
				codes[i] = Code(raw[i%len(raw)] & 3)
			}
		}
		w := KmerFromCodes(codes)
		rc2 := w.ReverseComplement(&Random, k).ReverseComplement(&Random, k)
		return rc2 == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCanonical(t *testing.T) {
	k := 5
	w := MustKmer(&Lexicographic, "TTTTT")
	can := w.Canonical(&Lexicographic, k)
	if got := can.String(&Lexicographic, k); got != "AAAAA" {
		t.Fatalf("canonical(TTTTT) = %q, want AAAAA", got)
	}
	// A k-mer and its RC share a canonical form.
	rc := w.ReverseComplement(&Lexicographic, k)
	if rc.Canonical(&Lexicographic, k) != can {
		t.Fatal("canonical not shared with reverse complement")
	}
}

func TestGCContent(t *testing.T) {
	w := MustKmer(&Lexicographic, "GGCCATAT")
	if gc := w.GCContent(&Lexicographic, 8); gc != 4 {
		t.Fatalf("GC = %d, want 4", gc)
	}
	if gc := MustKmer(&Random, "GGCCATAT").GCContent(&Random, 8); gc != 4 {
		t.Fatalf("GC under random encoding = %d, want 4", gc)
	}
}

func TestKmerMask(t *testing.T) {
	if KmerMask(0) != 0 {
		t.Error("mask(0) != 0")
	}
	if KmerMask(1) != 3 {
		t.Error("mask(1) != 3")
	}
	if KmerMask(32) != ^Kmer(0) {
		t.Error("mask(32) != all ones")
	}
	if KmerMask(17) != (1<<34)-1 {
		t.Error("mask(17) wrong")
	}
}

func TestWordsAndPackedBytes(t *testing.T) {
	cases := []struct{ k, words, bytes int }{
		{1, 1, 1}, {4, 1, 1}, {5, 1, 2}, {17, 1, 5}, {32, 1, 8}, {33, 2, 9}, {64, 2, 16},
	}
	for _, c := range cases {
		if got := Words(c.k); got != c.words {
			t.Errorf("Words(%d) = %d, want %d", c.k, got, c.words)
		}
		if got := PackedBytes(c.k); got != c.bytes {
			t.Errorf("PackedBytes(%d) = %d, want %d", c.k, got, c.bytes)
		}
	}
}

func TestKmerStringRoundTripQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(MaxK)
		seq := make([]byte, k)
		for i := range seq {
			seq[i] = "ACGT"[rng.Intn(4)]
		}
		for _, e := range []*Encoding{&Lexicographic, &Random} {
			w := MustKmer(e, string(seq))
			if got := w.String(e, k); got != string(seq) {
				t.Fatalf("%s: round trip %q -> %q", e.Name(), seq, got)
			}
		}
	}
}
