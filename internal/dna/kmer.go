package dna

import (
	"fmt"
	"math/bits"
)

// MaxK is the largest k-mer length representable by the single-word Kmer
// type (2 bits per base in a uint64). The paper's experiments use k=17,
// comfortably within one word; longer k-mers use LongKmer.
const MaxK = 32

// Kmer is a 2-bit-packed k-mer of length ≤ MaxK. The base at offset 0 (the
// leftmost, i.e. first, base of the sequence) occupies the *most* significant
// used bit pair, so that for a fixed k the integer order of Kmer values
// equals the lexicographic order of the code sequences. The k-mer length is
// carried externally (it is uniform across a run), exactly as in the paper's
// packed representation (§III-B.1).
type Kmer uint64

// KmerFromCodes packs k codes (k ≤ MaxK) into a Kmer.
func KmerFromCodes(codes []Code) Kmer {
	if len(codes) > MaxK {
		panic(fmt.Sprintf("dna: k=%d exceeds MaxK=%d", len(codes), MaxK))
	}
	var w Kmer
	for _, c := range codes {
		w = w<<2 | Kmer(c&3)
	}
	return w
}

// KmerFromString encodes an ASCII string of length ≤ MaxK under e.
func KmerFromString(e *Encoding, s string) (Kmer, error) {
	if len(s) > MaxK {
		return 0, fmt.Errorf("dna: k=%d exceeds MaxK=%d", len(s), MaxK)
	}
	var w Kmer
	for i := 0; i < len(s); i++ {
		code, ok := e.Encode(s[i])
		if !ok {
			return 0, fmt.Errorf("dna: invalid base %q at position %d", s[i], i)
		}
		w = w<<2 | Kmer(code)
	}
	return w, nil
}

// MustKmer is KmerFromString that panics on invalid input; for tests.
func MustKmer(e *Encoding, s string) Kmer {
	w, err := KmerFromString(e, s)
	if err != nil {
		panic(err)
	}
	return w
}

// KmerMask returns the mask covering the 2k low bits of a k-mer.
func KmerMask(k int) Kmer {
	if k <= 0 {
		return 0
	}
	if k >= MaxK {
		return ^Kmer(0)
	}
	return (Kmer(1) << (2 * uint(k))) - 1
}

// Append shifts in one base code at the right end (the "next" base in the
// read) and drops the leftmost base, yielding the next sliding-window k-mer.
// This is the O(1) rolling step both kernels rely on.
func (w Kmer) Append(k int, c Code) Kmer {
	return (w<<2 | Kmer(c&3)) & KmerMask(k)
}

// Base returns the code of the base at offset i (0 = leftmost/first base).
func (w Kmer) Base(k, i int) Code {
	if i < 0 || i >= k {
		panic(fmt.Sprintf("dna: base index %d out of range for k=%d", i, k))
	}
	shift := 2 * uint(k-1-i)
	return Code(w>>shift) & 3
}

// Sub extracts the contiguous sub-k-mer of length m starting at offset i
// (in bases). It is how minimizer candidates (m-mers) are sliced out of a
// k-mer without re-reading the input.
func (w Kmer) Sub(k, i, m int) Kmer {
	if i < 0 || m < 0 || i+m > k {
		panic(fmt.Sprintf("dna: sub[%d:%d+%d] out of range for k=%d", i, i, m, k))
	}
	shift := 2 * uint(k-i-m)
	return (w >> shift) & KmerMask(m)
}

// Codes appends the k codes of w to dst.
func (w Kmer) Codes(dst []Code, k int) []Code {
	for i := 0; i < k; i++ {
		dst = append(dst, w.Base(k, i))
	}
	return dst
}

// String decodes w under e into an ASCII string of length k.
func (w Kmer) String(e *Encoding, k int) string {
	buf := make([]byte, k)
	for i := 0; i < k; i++ {
		buf[i] = e.Decode(w.Base(k, i))
	}
	return string(buf)
}

// ReverseComplement returns the reverse complement of w under encoding e.
func (w Kmer) ReverseComplement(e *Encoding, k int) Kmer {
	var rc Kmer
	for i := 0; i < k; i++ {
		rc = rc<<2 | Kmer(e.Complement(Code(w&3)))
		w >>= 2
	}
	return rc
}

// Canonical returns the smaller (by packed value) of w and its reverse
// complement. The paper does not canonicalize (Fig. 4 caption) — the main
// pipelines follow suit — but canonical counting is offered as the common
// downstream convention.
func (w Kmer) Canonical(e *Encoding, k int) Kmer {
	rc := w.ReverseComplement(e, k)
	if rc < w {
		return rc
	}
	return w
}

// GCContent returns the number of G/C bases in w under encoding e.
func (w Kmer) GCContent(e *Encoding, k int) int {
	g := Kmer(e.MustEncode('G'))
	c := Kmer(e.MustEncode('C'))
	n := 0
	for i := 0; i < k; i++ {
		b := w & 3
		if b == g || b == c {
			n++
		}
		w >>= 2
	}
	return n
}

// Words reports how many 64-bit machine words a k-mer of length k occupies
// when 2-bit packed: ⌈k/32⌉. Used to size exchange buffers (§III-B.1 notes
// an 11-mer fits a 32-bit word instead of 88 bits of characters).
func Words(k int) int { return (k + MaxK - 1) / MaxK }

// PackedBytes reports the number of bytes needed for a 2-bit packed
// sequence of n bases: ⌈n/4⌉.
func PackedBytes(n int) int { return (n + 3) / 4 }

// PopcountCodes is a helper used by tests: number of set bits in the packed
// representation (useful for quick hashing sanity checks).
func (w Kmer) PopcountCodes() int { return bits.OnesCount64(uint64(w)) }
