package dna

import "fmt"

// LongKmer is a 2-bit-packed k-mer for k > MaxK, stored as big-endian words:
// word 0 holds the first (leftmost) bases. Within the final word, bases are
// left-aligned is *not* used — instead each word is packed exactly like Kmer
// with the last word holding the tail in its low bits; Len tracks k.
//
// LongKmer extends the single-word fast path so the library supports the
// longer k values (k = 31..127) common in long-read pipelines; the paper
// itself evaluates k=17 only, so LongKmer is an extension feature.
type LongKmer struct {
	words []uint64
	k     int
}

// NewLongKmer packs codes of arbitrary length into a LongKmer.
func NewLongKmer(codes []Code) LongKmer {
	k := len(codes)
	nw := Words(k)
	lk := LongKmer{words: make([]uint64, nw), k: k}
	for i, c := range codes {
		word := i / MaxK
		lk.words[word] = lk.words[word]<<2 | uint64(c&3)
	}
	return lk
}

// LongKmerFromString encodes an ASCII string under e.
func LongKmerFromString(e *Encoding, s string) (LongKmer, error) {
	codes := make([]Code, 0, len(s))
	codes, err := e.EncodeSeq(codes, []byte(s))
	if err != nil {
		return LongKmer{}, err
	}
	return NewLongKmer(codes), nil
}

// Len returns k.
func (lk LongKmer) Len() int { return lk.k }

// Base returns the code of the base at offset i (0 = leftmost).
func (lk LongKmer) Base(i int) Code {
	if i < 0 || i >= lk.k {
		panic(fmt.Sprintf("dna: base index %d out of range for k=%d", i, lk.k))
	}
	word := i / MaxK
	// Number of bases stored in this word:
	n := MaxK
	if word == len(lk.words)-1 {
		n = lk.k - word*MaxK
	}
	off := i - word*MaxK
	shift := 2 * uint(n-1-off)
	return Code(lk.words[word]>>shift) & 3
}

// Codes appends all k codes to dst.
func (lk LongKmer) Codes(dst []Code) []Code {
	for i := 0; i < lk.k; i++ {
		dst = append(dst, lk.Base(i))
	}
	return dst
}

// String decodes lk under e.
func (lk LongKmer) String(e *Encoding) string {
	buf := make([]byte, lk.k)
	for i := 0; i < lk.k; i++ {
		buf[i] = e.Decode(lk.Base(i))
	}
	return string(buf)
}

// Equal reports whether two LongKmers have identical length and content.
func (lk LongKmer) Equal(o LongKmer) bool {
	if lk.k != o.k {
		return false
	}
	for i, w := range lk.words {
		if o.words[i] != w {
			return false
		}
	}
	return true
}

// Cmp compares two equal-length LongKmers in base order, returning
// -1, 0 or +1. It panics if the lengths differ.
func (lk LongKmer) Cmp(o LongKmer) int {
	if lk.k != o.k {
		panic("dna: comparing LongKmers of different length")
	}
	for i, w := range lk.words {
		switch {
		case w < o.words[i]:
			return -1
		case w > o.words[i]:
			return 1
		}
	}
	return 0
}

// Words exposes the packed words (read-only by convention) for hashing and
// serialization.
func (lk LongKmer) WordsRaw() []uint64 { return lk.words }

// ReverseComplement returns the reverse complement under encoding e.
func (lk LongKmer) ReverseComplement(e *Encoding) LongKmer {
	codes := lk.Codes(make([]Code, 0, lk.k))
	rc := make([]Code, lk.k)
	for i, c := range codes {
		rc[lk.k-1-i] = e.Complement(c)
	}
	return NewLongKmer(rc)
}
