package dna

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPackedSeqBasic(t *testing.T) {
	var p PackedSeq
	seq := "GTCATGCATT"
	for i := 0; i < len(seq); i++ {
		p.Append(Lexicographic.MustEncode(seq[i]))
	}
	if p.Len() != len(seq) {
		t.Fatalf("len = %d, want %d", p.Len(), len(seq))
	}
	if got := p.String(&Lexicographic); got != seq {
		t.Fatalf("round trip = %q, want %q", got, seq)
	}
	if len(p.Bytes()) != PackedBytes(len(seq)) {
		t.Fatalf("bytes = %d, want %d", len(p.Bytes()), PackedBytes(len(seq)))
	}
}

func TestPackedSeqKmerExtraction(t *testing.T) {
	seq := "GTCATGCATT"
	codes, _ := Lexicographic.EncodeSeq(nil, []byte(seq))
	p := PackCodes(codes)
	k := 4
	for i := 0; i+k <= len(seq); i++ {
		got := p.Kmer(i, k).String(&Lexicographic, k)
		if got != seq[i:i+k] {
			t.Errorf("kmer(%d) = %q, want %q", i, got, seq[i:i+k])
		}
	}
}

func TestPackedSeqReset(t *testing.T) {
	p := PackCodes([]Code{1, 2, 3})
	p.Reset()
	if p.Len() != 0 || len(p.Bytes()) != 0 {
		t.Fatal("reset did not empty")
	}
	p.Append(2)
	if p.Len() != 1 || p.At(0) != 2 {
		t.Fatal("append after reset broken")
	}
}

func TestUnpackFrom(t *testing.T) {
	codes := []Code{0, 1, 2, 3, 3, 2, 1}
	p := PackCodes(codes)
	view := UnpackFrom(p.Bytes(), p.Len())
	for i, c := range codes {
		if view.At(i) != c {
			t.Fatalf("view[%d] = %d, want %d", i, view.At(i), c)
		}
	}
}

func TestUnpackFromPanicsWhenShort(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	UnpackFrom([]byte{0}, 9)
}

func TestPackedRoundTripQuick(t *testing.T) {
	f := func(raw []byte) bool {
		codes := make([]Code, len(raw))
		for i, b := range raw {
			codes[i] = Code(b & 3)
		}
		p := PackCodes(codes)
		got := p.Codes(nil)
		if len(got) != len(codes) {
			return false
		}
		for i := range codes {
			if got[i] != codes[i] {
				return false
			}
		}
		// A view over the serialized bytes decodes identically.
		view := UnpackFrom(p.Bytes(), p.Len())
		for i := range codes {
			if view.At(i) != codes[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPackedKmerMatchesSlidingWindow(t *testing.T) {
	// Property: extracting k-mers from a PackedSeq equals building them by
	// rolling Append over the codes.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(100)
		k := 1 + rng.Intn(MaxK)
		if k > n {
			k = n
		}
		codes := make([]Code, n)
		for i := range codes {
			codes[i] = Code(rng.Intn(4))
		}
		p := PackCodes(codes)
		var w Kmer
		for i := 0; i < n; i++ {
			w = w.Append(k, codes[i])
			if i >= k-1 {
				start := i - k + 1
				if got := p.Kmer(start, k); got != w {
					t.Fatalf("trial %d: kmer(%d,%d) = %x, rolling = %x", trial, start, k, got, w)
				}
			}
		}
	}
}

func TestSeqBuffer(t *testing.T) {
	var b SeqBuffer
	reads := []string{"ACGT", "GGGTTTAAA", "C"}
	for _, r := range reads {
		b.AppendRead([]byte(r))
	}
	if b.NumReads() != len(reads) {
		t.Fatalf("NumReads = %d", b.NumReads())
	}
	total := 0
	for i, r := range reads {
		if got := string(b.Read(i)); got != r {
			t.Errorf("read %d = %q, want %q", i, got, r)
		}
		total += len(r)
	}
	if b.TotalBases() != total {
		t.Errorf("TotalBases = %d, want %d", b.TotalBases(), total)
	}
	if len(b.Data()) != total+len(reads) {
		t.Errorf("Data len = %d, want %d", len(b.Data()), total+len(reads))
	}
	// Separators present at read ends.
	if b.Data()[4] != SeparatorByte {
		t.Error("missing separator after first read")
	}
	b.Reset()
	if b.NumReads() != 0 || b.TotalBases() != 0 {
		t.Error("reset did not empty buffer")
	}
}
