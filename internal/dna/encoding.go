// Package dna provides the nucleotide alphabet, 2-bit encodings, packed
// k-mer representations and sequence buffers used throughout the DEDUKT
// reproduction.
//
// A central idea from the paper (§III-B.1 and §IV-A) is that the four bases
// A, C, G, T are encoded in two bits, compressing a k-mer of length k into
// ⌈k/32⌉ machine words. The paper additionally exploits the *choice* of the
// 2-bit code as a cheap minimizer ordering: mapping A=1, C=0, T=2, G=3
// ("random" ordering, first explored by Squeakr) spreads minimizers more
// evenly than the lexicographic code and therefore produces more balanced
// supermer partitions.
package dna

import "fmt"

// Code is a 2-bit nucleotide code in the range [0,4). The numeric value is
// meaningful only relative to the Encoding that produced it.
type Code = uint8

// SeparatorByte marks read boundaries in concatenated ASCII base arrays
// staged to the (simulated) GPU, mirroring the paper's "special bases" that
// mark read ends (§III-B.1). It never appears inside a read.
const SeparatorByte byte = '\x00'

// Encoding maps ASCII nucleotides to 2-bit codes and back. The zero value is
// not valid; use one of the predefined encodings.
type Encoding struct {
	name string
	// enc maps ASCII byte -> code|validFlag. Entries with bit 7 clear are
	// invalid characters.
	enc [256]uint8
	// dec maps code -> upper-case ASCII base.
	dec [4]byte
	// comp maps code -> code of the complementary base.
	comp [4]Code
}

const validFlag = 0x80

// newEncoding builds an Encoding from the codes assigned to A, C, G and T.
// Lower-case input letters are accepted and map to the same codes.
func newEncoding(name string, a, c, g, t Code) Encoding {
	var e Encoding
	e.name = name
	assign := func(ch byte, code Code) {
		e.enc[ch] = uint8(code) | validFlag
		e.enc[ch|0x20] = uint8(code) | validFlag // lower case
		e.dec[code] = ch
	}
	assign('A', a)
	assign('C', c)
	assign('G', g)
	assign('T', t)
	// Complement pairs: A<->T, C<->G.
	e.comp[a] = t
	e.comp[t] = a
	e.comp[c] = g
	e.comp[g] = c
	return e
}

var (
	// Lexicographic is the textbook encoding A=0, C=1, G=2, T=3. Under this
	// encoding, comparing packed values compares sequences lexicographically,
	// which is the minimizer ordering of Roberts et al. (§II-B).
	Lexicographic = newEncoding("lex", 0, 1, 2, 3)

	// Random is the DEDUKT encoding A=1, C=0, T=2, G=3 (§IV-A). Packed-value
	// comparison under this encoding implicitly defines a "custom" minimizer
	// ordering that spreads out supermer partitions without extra work.
	Random = newEncoding("random", 1, 0, 3, 2)
)

// Name returns the encoding's short identifier ("lex" or "random").
func (e *Encoding) Name() string { return e.name }

// Encode converts an ASCII base (either case) to its 2-bit code.
// ok is false for any non-ACGT character (including 'N' and the read
// separator), in which case code is 0.
func (e *Encoding) Encode(ch byte) (code Code, ok bool) {
	v := e.enc[ch]
	return Code(v &^ validFlag), v&validFlag != 0
}

// MustEncode is Encode for inputs already known to be valid bases; it panics
// on anything else. Intended for tests and internal hot paths that have
// validated their input.
func (e *Encoding) MustEncode(ch byte) Code {
	code, ok := e.Encode(ch)
	if !ok {
		panic(fmt.Sprintf("dna: %q is not a valid base", ch))
	}
	return code
}

// Decode converts a 2-bit code back to its upper-case ASCII base.
func (e *Encoding) Decode(code Code) byte { return e.dec[code&3] }

// Complement returns the code of the Watson-Crick complement of code.
func (e *Encoding) Complement(code Code) Code { return e.comp[code&3] }

// Valid reports whether ch is one of A, C, G, T in either case.
func (e *Encoding) Valid(ch byte) bool { return e.enc[ch]&validFlag != 0 }

// EncodeSeq encodes an ASCII sequence into codes, appending to dst and
// returning the extended slice. It returns an error naming the offending
// position if the sequence contains a non-ACGT character.
func (e *Encoding) EncodeSeq(dst []Code, seq []byte) ([]Code, error) {
	for i, ch := range seq {
		code, ok := e.Encode(ch)
		if !ok {
			return dst, fmt.Errorf("dna: invalid base %q at position %d", ch, i)
		}
		dst = append(dst, code)
	}
	return dst, nil
}

// DecodeSeq decodes 2-bit codes into ASCII bases, appending to dst.
func (e *Encoding) DecodeSeq(dst []byte, codes []Code) []byte {
	for _, c := range codes {
		dst = append(dst, e.Decode(c))
	}
	return dst
}
