package dna

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestEncodingRoundTrip(t *testing.T) {
	for _, e := range []*Encoding{&Lexicographic, &Random} {
		for _, ch := range []byte("ACGT") {
			code, ok := e.Encode(ch)
			if !ok {
				t.Fatalf("%s: %q should be valid", e.Name(), ch)
			}
			if got := e.Decode(code); got != ch {
				t.Errorf("%s: decode(encode(%q)) = %q", e.Name(), ch, got)
			}
		}
		// Lower case maps to the same codes.
		for _, pair := range [][2]byte{{'a', 'A'}, {'c', 'C'}, {'g', 'G'}, {'t', 'T'}} {
			lo, _ := e.Encode(pair[0])
			up, _ := e.Encode(pair[1])
			if lo != up {
				t.Errorf("%s: case mismatch for %q", e.Name(), pair[1])
			}
		}
	}
}

func TestEncodingValues(t *testing.T) {
	// Lexicographic: A=0 C=1 G=2 T=3.
	wantLex := map[byte]Code{'A': 0, 'C': 1, 'G': 2, 'T': 3}
	for ch, want := range wantLex {
		if got := Lexicographic.MustEncode(ch); got != want {
			t.Errorf("lex %q = %d, want %d", ch, got, want)
		}
	}
	// Paper's random ordering (§IV-A): A=1, C=0, T=2, G=3.
	wantRnd := map[byte]Code{'A': 1, 'C': 0, 'T': 2, 'G': 3}
	for ch, want := range wantRnd {
		if got := Random.MustEncode(ch); got != want {
			t.Errorf("random %q = %d, want %d", ch, got, want)
		}
	}
}

func TestEncodingInvalid(t *testing.T) {
	for _, ch := range []byte{'N', 'n', 'X', ' ', 0, 255, SeparatorByte} {
		if _, ok := Lexicographic.Encode(ch); ok {
			t.Errorf("%q should be invalid", ch)
		}
		if Lexicographic.Valid(ch) {
			t.Errorf("Valid(%q) should be false", ch)
		}
	}
}

func TestComplement(t *testing.T) {
	pairs := map[byte]byte{'A': 'T', 'T': 'A', 'C': 'G', 'G': 'C'}
	for _, e := range []*Encoding{&Lexicographic, &Random} {
		for b, comp := range pairs {
			got := e.Decode(e.Complement(e.MustEncode(b)))
			if got != comp {
				t.Errorf("%s: complement(%q) = %q, want %q", e.Name(), b, got, comp)
			}
		}
	}
}

func TestEncodeSeq(t *testing.T) {
	codes, err := Lexicographic.EncodeSeq(nil, []byte("ACGT"))
	if err != nil {
		t.Fatal(err)
	}
	want := []Code{0, 1, 2, 3}
	for i := range want {
		if codes[i] != want[i] {
			t.Fatalf("EncodeSeq = %v, want %v", codes, want)
		}
	}
	back := Lexicographic.DecodeSeq(nil, codes)
	if !bytes.Equal(back, []byte("ACGT")) {
		t.Fatalf("DecodeSeq = %q", back)
	}
	if _, err := Lexicographic.EncodeSeq(nil, []byte("ACNGT")); err == nil {
		t.Fatal("expected error for N")
	}
}

func TestMustEncodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Lexicographic.MustEncode('N')
}

func TestEncodeSeqQuick(t *testing.T) {
	// Property: EncodeSeq then DecodeSeq is identity on ACGT strings.
	f := func(raw []byte) bool {
		seq := make([]byte, len(raw))
		for i, b := range raw {
			seq[i] = "ACGT"[b&3]
		}
		codes, err := Random.EncodeSeq(nil, seq)
		if err != nil {
			return false
		}
		return bytes.Equal(Random.DecodeSeq(nil, codes), seq)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
