package dna

import (
	"math/rand"
	"strings"
	"testing"
)

func randSeq(rng *rand.Rand, n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte("ACGT"[rng.Intn(4)])
	}
	return sb.String()
}

func TestLongKmerRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, k := range []int{1, 31, 32, 33, 55, 64, 65, 127} {
		s := randSeq(rng, k)
		lk, err := LongKmerFromString(&Lexicographic, s)
		if err != nil {
			t.Fatal(err)
		}
		if lk.Len() != k {
			t.Fatalf("k=%d: Len = %d", k, lk.Len())
		}
		if got := lk.String(&Lexicographic); got != s {
			t.Fatalf("k=%d: round trip mismatch", k)
		}
		if len(lk.WordsRaw()) != Words(k) {
			t.Fatalf("k=%d: %d words, want %d", k, len(lk.WordsRaw()), Words(k))
		}
	}
}

func TestLongKmerMatchesKmerForShortK(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(MaxK)
		s := randSeq(rng, k)
		lk, _ := LongKmerFromString(&Random, s)
		w := MustKmer(&Random, s)
		if lk.WordsRaw()[0] != uint64(w) {
			t.Fatalf("k=%d %s: long=%x short=%x", k, s, lk.WordsRaw()[0], uint64(w))
		}
		for i := 0; i < k; i++ {
			if lk.Base(i) != w.Base(k, i) {
				t.Fatalf("k=%d base %d mismatch", k, i)
			}
		}
	}
}

func TestLongKmerCmp(t *testing.T) {
	a, _ := LongKmerFromString(&Lexicographic, randSeq(rand.New(rand.NewSource(1)), 40))
	b := a
	if a.Cmp(b) != 0 || !a.Equal(b) {
		t.Fatal("equal long kmers should compare 0")
	}
	lo, _ := LongKmerFromString(&Lexicographic, "A"+randSeq(rand.New(rand.NewSource(2)), 39))
	hi, _ := LongKmerFromString(&Lexicographic, "T"+randSeq(rand.New(rand.NewSource(2)), 39))
	if lo.Cmp(hi) != -1 || hi.Cmp(lo) != 1 {
		t.Fatal("lexicographic ordering violated")
	}
}

func TestLongKmerCmpPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a, _ := LongKmerFromString(&Lexicographic, "ACGT")
	b, _ := LongKmerFromString(&Lexicographic, "ACGTA")
	a.Cmp(b)
}

func TestLongKmerReverseComplement(t *testing.T) {
	s := "GATTACAGATTACAGATTACAGATTACAGATTACA" // 35 bases, 2 words
	lk, _ := LongKmerFromString(&Lexicographic, s)
	rc := lk.ReverseComplement(&Lexicographic)
	want := "TGTAATCTGTAATCTGTAATCTGTAATCTGTAATC"
	if got := rc.String(&Lexicographic); got != want {
		t.Fatalf("rc = %s, want %s", got, want)
	}
	if !rc.ReverseComplement(&Lexicographic).Equal(lk) {
		t.Fatal("rc(rc(x)) != x")
	}
}

func TestLongKmerBasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	lk, _ := LongKmerFromString(&Lexicographic, "ACGT")
	lk.Base(4)
}
