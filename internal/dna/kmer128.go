package dna

import "fmt"

// Max128K is the largest k-mer length representable by Kmer128.
const Max128K = 64

// Kmer128 is a 2-bit-packed k-mer of length ≤ 64 spanning two machine
// words: Lo holds the rightmost (most recent) 32 bases exactly like Kmer,
// and Hi holds the bases before them (packed like a Kmer of length k−32).
// For k ≤ 32, Hi is always zero and Lo equals the Kmer representation, so
// the two types interconvert freely in that range.
//
// Kmer128 extends the library to the longer k values used by long-read
// pipelines (the paper itself evaluates k=17 only); the distributed GPU
// pipeline remains single-word like the paper's implementation, and wide
// k-mers are served by the serial counting path (kcount.WideTable).
type Kmer128 struct {
	Hi, Lo uint64
}

// Kmer128FromCodes packs up to Max128K codes.
func Kmer128FromCodes(codes []Code) Kmer128 {
	if len(codes) > Max128K {
		panic(fmt.Sprintf("dna: k=%d exceeds Max128K=%d", len(codes), Max128K))
	}
	var w Kmer128
	k := len(codes)
	for _, c := range codes {
		w = w.Append(k, c)
	}
	return w
}

// Kmer128FromString encodes an ASCII string of length ≤ Max128K under e.
func Kmer128FromString(e *Encoding, s string) (Kmer128, error) {
	if len(s) > Max128K {
		return Kmer128{}, fmt.Errorf("dna: k=%d exceeds Max128K=%d", len(s), Max128K)
	}
	codes, err := e.EncodeSeq(make([]Code, 0, len(s)), []byte(s))
	if err != nil {
		return Kmer128{}, err
	}
	return Kmer128FromCodes(codes), nil
}

// MustKmer128 is Kmer128FromString that panics on invalid input; for tests.
func MustKmer128(e *Encoding, s string) Kmer128 {
	w, err := Kmer128FromString(e, s)
	if err != nil {
		panic(err)
	}
	return w
}

// hiMask returns the mask for the Hi word of a k-mer of length k.
func hiMask(k int) uint64 {
	if k <= MaxK {
		return 0
	}
	return uint64(KmerMask(k - MaxK))
}

// Append shifts in one base at the right end, dropping the leftmost base —
// the O(1) rolling step, exactly like Kmer.Append.
func (w Kmer128) Append(k int, c Code) Kmer128 {
	if k <= MaxK {
		return Kmer128{Lo: uint64(Kmer(w.Lo).Append(k, c))}
	}
	hi := (w.Hi<<2 | w.Lo>>62) & hiMask(k)
	lo := w.Lo<<2 | uint64(c&3)
	return Kmer128{Hi: hi, Lo: lo}
}

// Base returns the code of the base at offset i (0 = leftmost).
func (w Kmer128) Base(k, i int) Code {
	if i < 0 || i >= k {
		panic(fmt.Sprintf("dna: base index %d out of range for k=%d", i, k))
	}
	if k <= MaxK {
		return Kmer(w.Lo).Base(k, i)
	}
	hiLen := k - MaxK
	if i < hiLen {
		return Kmer(w.Hi).Base(hiLen, i)
	}
	return Kmer(w.Lo).Base(MaxK, i-hiLen)
}

// Sub extracts the length-m sub-k-mer starting at offset i (m ≤ 32),
// returned as a single-word Kmer — the minimizer-candidate primitive.
func (w Kmer128) Sub(k, i, m int) Kmer {
	if m > MaxK {
		panic(fmt.Sprintf("dna: sub length %d exceeds MaxK", m))
	}
	if i < 0 || m < 0 || i+m > k {
		panic(fmt.Sprintf("dna: sub[%d:%d+%d] out of range for k=%d", i, i, m, k))
	}
	var out Kmer
	for j := 0; j < m; j++ {
		out = out<<2 | Kmer(w.Base(k, i+j))
	}
	return out
}

// String decodes w under e into an ASCII string of length k.
func (w Kmer128) String(e *Encoding, k int) string {
	buf := make([]byte, k)
	for i := 0; i < k; i++ {
		buf[i] = e.Decode(w.Base(k, i))
	}
	return string(buf)
}

// ReverseComplement returns the reverse complement under encoding e.
func (w Kmer128) ReverseComplement(e *Encoding, k int) Kmer128 {
	var rc Kmer128
	for i := k - 1; i >= 0; i-- {
		rc = rc.Append(k, e.Complement(w.Base(k, i)))
	}
	return rc
}

// Canonical returns the smaller of w and its reverse complement.
func (w Kmer128) Canonical(e *Encoding, k int) Kmer128 {
	rc := w.ReverseComplement(e, k)
	if rc.Less(w) {
		return rc
	}
	return w
}

// Less orders equal-length Kmer128s by base sequence.
func (w Kmer128) Less(o Kmer128) bool {
	if w.Hi != o.Hi {
		return w.Hi < o.Hi
	}
	return w.Lo < o.Lo
}

// Words returns the packed words for hashing ([hi, lo]).
func (w Kmer128) Words() [2]uint64 { return [2]uint64{w.Hi, w.Lo} }
