package dna

import (
	"math/rand"
	"testing"
)

func benchSeq(n int) []byte {
	rng := rand.New(rand.NewSource(1))
	seq := make([]byte, n)
	for i := range seq {
		seq[i] = "ACGT"[rng.Intn(4)]
	}
	return seq
}

func BenchmarkEncodeSeq(b *testing.B) {
	seq := benchSeq(64 << 10)
	buf := make([]Code, 0, len(seq))
	b.SetBytes(int64(len(seq)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = Random.EncodeSeq(buf[:0], seq)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKmerRoll(b *testing.B) {
	codes, _ := Random.EncodeSeq(nil, benchSeq(64<<10))
	const k = 17
	b.SetBytes(int64(len(codes)))
	b.ResetTimer()
	var w Kmer
	for i := 0; i < b.N; i++ {
		for _, c := range codes {
			w = w.Append(k, c)
		}
	}
	_ = w
}

func BenchmarkReverseComplement(b *testing.B) {
	w := MustKmer(&Random, "GATTACAGATTACAGAT")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w = w.ReverseComplement(&Random, 17)
	}
	_ = w
}

func BenchmarkPackedSeqAppend(b *testing.B) {
	codes, _ := Random.EncodeSeq(nil, benchSeq(4096))
	b.SetBytes(int64(len(codes)))
	p := NewPackedSeq(len(codes))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Reset()
		for _, c := range codes {
			p.Append(c)
		}
	}
}

func BenchmarkPackedKmerExtract(b *testing.B) {
	codes, _ := Random.EncodeSeq(nil, benchSeq(4096))
	p := PackCodes(codes)
	const k = 17
	b.ResetTimer()
	var w Kmer
	for i := 0; i < b.N; i++ {
		for j := 0; j+k <= p.Len(); j += k {
			w = p.Kmer(j, k)
		}
	}
	_ = w
}
