package dna

import "fmt"

// PackedSeq is a variable-length 2-bit-packed nucleotide sequence, the wire
// representation of a supermer (§IV-C): with the paper's window of 15 and
// k=17 every supermer is at most 31 bases and fits one 64-bit word, but the
// type supports arbitrary lengths so other (k, w) configurations work too.
//
// Packing layout: base i lives at bits [2i, 2i+2) of byte i/4 — little-endian
// in bases, which makes append O(1) without reshuffling.
type PackedSeq struct {
	data []byte
	n    int
}

// NewPackedSeq returns a PackedSeq with capacity for n bases.
func NewPackedSeq(capBases int) PackedSeq {
	return PackedSeq{data: make([]byte, 0, PackedBytes(capBases))}
}

// PackCodes packs a code slice into a fresh PackedSeq.
func PackCodes(codes []Code) PackedSeq {
	p := NewPackedSeq(len(codes))
	for _, c := range codes {
		p.Append(c)
	}
	return p
}

// Len returns the number of bases.
func (p *PackedSeq) Len() int { return p.n }

// Bytes returns the underlying packed bytes (⌈Len/4⌉ of them). The final
// partial byte has its unused high bits zero.
func (p *PackedSeq) Bytes() []byte { return p.data }

// Reset truncates the sequence to zero bases, keeping capacity.
func (p *PackedSeq) Reset() {
	p.data = p.data[:0]
	p.n = 0
}

// Append adds one base code at the end.
func (p *PackedSeq) Append(c Code) {
	if p.n%4 == 0 {
		p.data = append(p.data, 0)
	}
	p.data[len(p.data)-1] |= byte(c&3) << (2 * uint(p.n%4))
	p.n++
}

// At returns the code of base i.
func (p *PackedSeq) At(i int) Code {
	if i < 0 || i >= p.n {
		panic(fmt.Sprintf("dna: packed index %d out of range (len %d)", i, p.n))
	}
	return Code(p.data[i/4]>>(2*uint(i%4))) & 3
}

// Kmer extracts the k-mer starting at base offset i. This is the receiving
// side of the supermer pipeline: each received supermer of length s yields
// s-k+1 k-mers (Alg. 2, COUNTKMER).
func (p *PackedSeq) Kmer(i, k int) Kmer {
	if i < 0 || k < 0 || i+k > p.n {
		panic(fmt.Sprintf("dna: kmer[%d:%d] out of range (len %d)", i, i+k, p.n))
	}
	var w Kmer
	for j := i; j < i+k; j++ {
		w = w<<2 | Kmer(p.At(j))
	}
	return w
}

// Codes appends all base codes to dst.
func (p *PackedSeq) Codes(dst []Code) []Code {
	for i := 0; i < p.n; i++ {
		dst = append(dst, p.At(i))
	}
	return dst
}

// String decodes the sequence under e.
func (p *PackedSeq) String(e *Encoding) string {
	buf := make([]byte, p.n)
	for i := 0; i < p.n; i++ {
		buf[i] = e.Decode(p.At(i))
	}
	return string(buf)
}

// UnpackFrom reinterprets packed bytes holding n bases (as produced by
// Bytes) as a PackedSeq view. The bytes are not copied.
func UnpackFrom(data []byte, n int) PackedSeq {
	if len(data) < PackedBytes(n) {
		panic(fmt.Sprintf("dna: %d bytes cannot hold %d bases", len(data), n))
	}
	return PackedSeq{data: data[:PackedBytes(n)], n: n}
}

// SeqBuffer is the concatenated, separator-delimited ASCII base array that
// the host stages to the GPU (§III-B.1): all reads of a partition joined
// into "one long array of bases", read ends marked by SeparatorByte, so the
// kernel can partition the array evenly across thread blocks regardless of
// individual read lengths.
type SeqBuffer struct {
	data   []byte
	starts []int // start offset of each read within data
}

// AppendRead appends one read's bases followed by a separator.
func (b *SeqBuffer) AppendRead(seq []byte) {
	b.starts = append(b.starts, len(b.data))
	b.data = append(b.data, seq...)
	b.data = append(b.data, SeparatorByte)
}

// Data returns the concatenated array including separators.
func (b *SeqBuffer) Data() []byte { return b.data }

// NumReads returns how many reads were appended.
func (b *SeqBuffer) NumReads() int { return len(b.starts) }

// Read returns the i-th read's bases (excluding the separator).
func (b *SeqBuffer) Read(i int) []byte {
	start := b.starts[i]
	end := len(b.data)
	if i+1 < len(b.starts) {
		end = b.starts[i+1]
	}
	return b.data[start : end-1] // trim trailing separator
}

// TotalBases returns the number of nucleotide bases (excluding separators).
func (b *SeqBuffer) TotalBases() int { return len(b.data) - len(b.starts) }

// Reset empties the buffer, keeping capacity.
func (b *SeqBuffer) Reset() {
	b.data = b.data[:0]
	b.starts = b.starts[:0]
}
