package dna

import (
	"math/rand"
	"testing"
)

func TestKmer128RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, k := range []int{1, 17, 31, 32, 33, 45, 63, 64} {
		s := randSeq(rng, k)
		w := MustKmer128(&Random, s)
		if got := w.String(&Random, k); got != s {
			t.Fatalf("k=%d: round trip %q -> %q", k, s, got)
		}
	}
}

func TestKmer128MatchesKmerForShortK(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 80; trial++ {
		k := 1 + rng.Intn(MaxK)
		s := randSeq(rng, k)
		w128 := MustKmer128(&Random, s)
		w := MustKmer(&Random, s)
		if w128.Hi != 0 || w128.Lo != uint64(w) {
			t.Fatalf("k=%d: Kmer128{%x,%x} != Kmer %x", k, w128.Hi, w128.Lo, uint64(w))
		}
	}
}

func TestKmer128AppendMatchesRebuild(t *testing.T) {
	// Rolling Append over a sequence equals packing each window afresh.
	rng := rand.New(rand.NewSource(73))
	for _, k := range []int{33, 48, 64} {
		seq := randSeq(rng, 300)
		var w Kmer128
		for i := 0; i < len(seq); i++ {
			w = w.Append(k, Random.MustEncode(seq[i]))
			if i >= k-1 {
				want := MustKmer128(&Random, seq[i-k+1:i+1])
				if w != want {
					t.Fatalf("k=%d pos %d: rolling %v != packed %v", k, i, w, want)
				}
			}
		}
	}
}

func TestKmer128BaseAndSub(t *testing.T) {
	s := randSeq(rand.New(rand.NewSource(74)), 50)
	k := len(s)
	w := MustKmer128(&Random, s)
	for i := 0; i < k; i++ {
		if got := Random.Decode(w.Base(k, i)); got != s[i] {
			t.Fatalf("base %d = %c, want %c", i, got, s[i])
		}
	}
	for _, m := range []int{1, 7, 17, 32} {
		for i := 0; i+m <= k; i += 5 {
			sub := w.Sub(k, i, m)
			if got := sub.String(&Random, m); got != s[i:i+m] {
				t.Fatalf("sub(%d,%d) = %q, want %q", i, m, got, s[i:i+m])
			}
		}
	}
}

func TestKmer128ReverseComplement(t *testing.T) {
	s := "GATTACAGATTACAGATTACAGATTACAGATTACAGATTACA" // 42 bases
	w := MustKmer128(&Lexicographic, s)
	rc := w.ReverseComplement(&Lexicographic, len(s))
	if rc.ReverseComplement(&Lexicographic, len(s)) != w {
		t.Fatal("rc(rc(x)) != x")
	}
	// Spot check ends.
	if got := Lexicographic.Decode(rc.Base(len(s), 0)); got != 'T' {
		t.Fatalf("rc starts with %c, want T", got)
	}
	can := w.Canonical(&Lexicographic, len(s))
	if can != w && can != rc {
		t.Fatal("canonical is neither strand")
	}
	if rc.Canonical(&Lexicographic, len(s)) != can {
		t.Fatal("canonical not shared")
	}
}

func TestKmer128Less(t *testing.T) {
	a := MustKmer128(&Lexicographic, "A"+string(make48('C')))
	b := MustKmer128(&Lexicographic, "C"+string(make48('A')))
	if !a.Less(b) || b.Less(a) {
		t.Fatal("ordering by leading base broken")
	}
	if a.Less(a) {
		t.Fatal("irreflexive violated")
	}
}

func make48(c byte) []byte {
	out := make([]byte, 48)
	for i := range out {
		out[i] = c
	}
	return out
}

func TestKmer128Panics(t *testing.T) {
	w := MustKmer128(&Random, "ACGT")
	for _, f := range []func(){
		func() { Kmer128FromCodes(make([]Code, 65)) },
		func() { w.Base(4, 4) },
		func() { w.Sub(4, 0, 33) },
		func() { w.Sub(4, 3, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
	if _, err := Kmer128FromString(&Random, string(make([]byte, 70))); err == nil {
		t.Error("k=70 should error")
	}
}
