package spectrum

import (
	"math"
	"math/rand"
	"testing"

	"dedukt/internal/kcount"
)

// syntheticHistogram builds an error spike + Poisson coverage peak.
func syntheticHistogram(rng *rand.Rand, genomeKmers int, lambda float64, errorKmers int) kcount.Histogram {
	h := kcount.Histogram{Counts: map[uint32]uint64{}}
	for i := 0; i < genomeKmers; i++ {
		f := poisson(rng, lambda)
		if f > 0 {
			h.Counts[uint32(f)]++
		}
	}
	// Error k-mers: mostly singletons with a geometric tail.
	for i := 0; i < errorKmers; i++ {
		f := 1
		for rng.Float64() < 0.15 {
			f++
		}
		h.Counts[uint32(f)]++
	}
	return h
}

func poisson(rng *rand.Rand, lambda float64) int {
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

func TestFitRecoversParameters(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	const genomeKmers, lambda, errKmers = 100_000, 24.0, 60_000
	h := syntheticHistogram(rng, genomeKmers, lambda, errKmers)
	m, err := Fit(h)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.KmerCoverage-lambda)/lambda > 0.08 {
		t.Fatalf("coverage %.2f, want ≈%.1f", m.KmerCoverage, lambda)
	}
	if math.Abs(m.GenomeSizeKmers-genomeKmers)/genomeKmers > 0.08 {
		t.Fatalf("genome size %.0f, want ≈%d", m.GenomeSizeKmers, genomeKmers)
	}
	if m.ErrorKmers < uint64(float64(errKmers)*0.7) {
		t.Fatalf("error kmers %d, want most of %d", m.ErrorKmers, errKmers)
	}
	if m.RepeatFraction > 0.05 {
		t.Fatalf("repeat fraction %.3f for a repeat-free model", m.RepeatFraction)
	}
}

func TestFitDetectsRepeats(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	h := syntheticHistogram(rng, 50_000, 20, 10_000)
	// Add a 2-copy repeat family: k-mers at ~2λ.
	for i := 0; i < 5_000; i++ {
		f := poisson(rng, 40)
		if f > 0 {
			h.Counts[uint32(f)]++
		}
	}
	m, err := Fit(h)
	if err != nil {
		t.Fatal(err)
	}
	if m.RepeatFraction < 0.10 {
		t.Fatalf("repeat fraction %.3f, want ≥0.10", m.RepeatFraction)
	}
}

func TestFitEmptyAndFlat(t *testing.T) {
	if _, err := Fit(kcount.Histogram{Counts: map[uint32]uint64{}}); err == nil {
		t.Fatal("empty histogram should fail")
	}
	// Pure error spike with no peak: monotone decreasing, no local min —
	// the fit either fails or attributes everything to errors.
	h := kcount.Histogram{Counts: map[uint32]uint64{1: 1000, 2: 100, 3: 10}}
	m, err := Fit(h)
	if err == nil && m.GenomeSizeKmers > 2000 {
		t.Fatalf("flat spectrum produced genome size %.0f", m.GenomeSizeKmers)
	}
}

func TestErrorRate(t *testing.T) {
	m := Model{ErrorKmers: 17_000}
	if got := m.ErrorRate(17, 1_000_000); math.Abs(got-0.001) > 1e-9 {
		t.Fatalf("error rate %f, want 0.001", got)
	}
	if m.ErrorRate(17, 0) != 0 {
		t.Fatal("zero bases should give 0")
	}
}
