// Package spectrum analyzes k-mer frequency histograms: locating the
// coverage peak, separating the error component, and estimating genome
// size, k-mer coverage, error rate and repeat content — the profile
// analyses the paper's §II-A motivates ("k-mer histograms are valuable for
// understanding the distributions of genomic subsequences, creating
// 'profiles' of genome and metagenomic data").
package spectrum

import (
	"fmt"
	"math"

	"dedukt/internal/kcount"
)

// Model summarizes a fitted spectrum.
type Model struct {
	// KmerCoverage is the depth λ of the homozygous coverage peak.
	KmerCoverage float64
	// GenomeSizeKmers estimates the number of distinct genomic k-mer
	// positions: genomic k-mer mass / λ.
	GenomeSizeKmers float64
	// ErrorKmers is the number of distinct k-mers attributed to the error
	// component (below the error cutoff).
	ErrorKmers uint64
	// ErrorCutoff is the frequency below which k-mers are treated as
	// errors (the valley between the error spike and the coverage peak).
	ErrorCutoff uint32
	// RepeatFraction is the share of genomic k-mer mass at ≥1.6λ —
	// k-mers occurring more often than single-copy sequence allows.
	RepeatFraction float64
	// TotalKmers and DistinctKmers echo the input histogram.
	TotalKmers, DistinctKmers uint64
}

// Fit analyzes a histogram. It returns an error when no coverage peak is
// discernible (coverage too low or input empty).
func Fit(h kcount.Histogram) (Model, error) {
	var m Model
	m.TotalKmers = h.Total()
	m.DistinctKmers = h.Distinct()
	if len(h.Counts) == 0 {
		return m, fmt.Errorf("spectrum: empty histogram")
	}
	freqs := h.Frequencies()

	// 1. Find the error valley: the first local minimum of counts[f]
	//    scanning f = 2, 3, ... (counts[1] is the error spike).
	cutoff := uint32(2)
	prev := h.Counts[1]
	for _, f := range freqs {
		if f < 2 {
			continue
		}
		c := h.Counts[f]
		if c > prev {
			cutoff = f - 1
			break
		}
		prev = c
		cutoff = f + 1
	}

	// 2. Coverage peak: modal class at or above the valley.
	var peak uint32
	var peakCount uint64
	for _, f := range freqs {
		if f < cutoff {
			continue
		}
		if h.Counts[f] > peakCount {
			peak, peakCount = f, h.Counts[f]
		}
	}
	if peak == 0 || peakCount == 0 {
		return m, fmt.Errorf("spectrum: no coverage peak above the error cutoff %d", cutoff)
	}

	// 3. Refine λ as the count-weighted mean frequency within ±25% of the
	//    modal class (a robust Poisson-mean estimate).
	lo := uint32(math.Floor(float64(peak) * 0.75))
	hi := uint32(math.Ceil(float64(peak) * 1.25))
	var wsum, csum float64
	for _, f := range freqs {
		if f >= lo && f <= hi {
			wsum += float64(f) * float64(h.Counts[f])
			csum += float64(h.Counts[f])
		}
	}
	lambda := wsum / csum

	// 4. Mass accounting.
	var genomicMass, repeatMass float64
	repeatAt := lambda * 1.6
	for _, f := range freqs {
		if f < cutoff {
			m.ErrorKmers += h.Counts[f]
			continue
		}
		mass := float64(f) * float64(h.Counts[f])
		genomicMass += mass
		if float64(f) >= repeatAt {
			repeatMass += mass
		}
	}
	if genomicMass == 0 {
		return m, fmt.Errorf("spectrum: no genomic mass above cutoff %d", cutoff)
	}

	m.KmerCoverage = lambda
	m.ErrorCutoff = cutoff
	m.GenomeSizeKmers = genomicMass / lambda
	m.RepeatFraction = repeatMass / genomicMass
	return m, nil
}

// ErrorRate estimates the per-base substitution rate from the error
// component: each erroneous base damages ~k k-mers, nearly all unique.
func (m Model) ErrorRate(k int, totalBases uint64) float64 {
	if totalBases == 0 {
		return 0
	}
	return float64(m.ErrorKmers) / float64(uint64(k)*totalBases)
}
