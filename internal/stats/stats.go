// Package stats provides the small numeric and formatting helpers the
// experiment harness uses to print paper-style tables: load-imbalance
// ratios, human-readable counts and durations, and fixed-width text tables.
package stats

import (
	"fmt"
	"strings"
	"time"
)

// Imbalance returns max/avg over loads, the paper's load-imbalance metric
// (Table III). It returns 0 for empty or all-zero input.
func Imbalance(loads []uint64) float64 {
	if len(loads) == 0 {
		return 0
	}
	var sum, max uint64
	for _, v := range loads {
		sum += v
		if v > max {
			max = v
		}
	}
	if sum == 0 {
		return 0
	}
	return float64(max) / (float64(sum) / float64(len(loads)))
}

// MinMaxMean summarizes a load vector.
func MinMaxMean(loads []uint64) (min, max uint64, mean float64) {
	if len(loads) == 0 {
		return 0, 0, 0
	}
	min = loads[0]
	var sum uint64
	for _, v := range loads {
		sum += v
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max, float64(sum) / float64(len(loads))
}

// Speedup returns base/over as a factor (0 when over is 0).
func Speedup(base, over time.Duration) float64 {
	if over <= 0 {
		return 0
	}
	return base.Seconds() / over.Seconds()
}

// Count formats large counts the way the paper's Table II does: 412M, 4.7B.
func Count(n uint64) string {
	switch {
	case n >= 1_000_000_000_000:
		return fmt.Sprintf("%.1fT", float64(n)/1e12)
	case n >= 1_000_000_000:
		return fmt.Sprintf("%.1fB", float64(n)/1e9)
	case n >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 10_000:
		return fmt.Sprintf("%.0fK", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// Bytes formats byte volumes.
func Bytes(n uint64) string {
	switch {
	case n >= 1<<40:
		return fmt.Sprintf("%.2fTiB", float64(n)/(1<<40))
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Seconds formats a duration with ms precision for sub-second values.
func Seconds(d time.Duration) string {
	s := d.Seconds()
	switch {
	case s >= 100:
		return fmt.Sprintf("%.0fs", s)
	case s >= 1:
		return fmt.Sprintf("%.2fs", s)
	case s >= 0.001:
		return fmt.Sprintf("%.1fms", s*1e3)
	default:
		return fmt.Sprintf("%.0fµs", s*1e6)
	}
}

// Table accumulates rows and renders a fixed-width text table.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// Row appends a row; values are formatted with %v.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case time.Duration:
			row[i] = Seconds(v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			for pad := len(c); pad < widths[i]; pad++ {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}
