package stats

import (
	"strings"
	"testing"
	"time"
)

func TestImbalance(t *testing.T) {
	cases := []struct {
		loads []uint64
		want  float64
	}{
		{nil, 0},
		{[]uint64{0, 0}, 0},
		{[]uint64{5, 5, 5}, 1.0},
		{[]uint64{10, 20, 30}, 1.5},
	}
	for _, c := range cases {
		if got := Imbalance(c.loads); got != c.want {
			t.Errorf("Imbalance(%v) = %v, want %v", c.loads, got, c.want)
		}
	}
}

func TestMinMaxMean(t *testing.T) {
	min, max, mean := MinMaxMean([]uint64{3, 9, 6})
	if min != 3 || max != 9 || mean != 6 {
		t.Fatalf("got %d %d %f", min, max, mean)
	}
	min, max, mean = MinMaxMean(nil)
	if min != 0 || max != 0 || mean != 0 {
		t.Fatal("empty input should be zeros")
	}
}

func TestSpeedup(t *testing.T) {
	if s := Speedup(10*time.Second, 2*time.Second); s != 5 {
		t.Fatalf("speedup = %f", s)
	}
	if Speedup(time.Second, 0) != 0 {
		t.Fatal("zero denominator should give 0")
	}
}

func TestCountFormat(t *testing.T) {
	cases := map[uint64]string{
		412_000_000:     "412.0M",
		4_700_000_000:   "4.7B",
		167_000_000_000: "167.0B",
		12_000:          "12K",
		999:             "999",
	}
	for n, want := range cases {
		if got := Count(n); got != want {
			t.Errorf("Count(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestBytesFormat(t *testing.T) {
	if got := Bytes(1 << 30); got != "1.00GiB" {
		t.Errorf("got %q", got)
	}
	if got := Bytes(512); got != "512B" {
		t.Errorf("got %q", got)
	}
}

func TestSecondsFormat(t *testing.T) {
	cases := map[time.Duration]string{
		2500 * time.Millisecond: "2.50s",
		150 * time.Second:       "150s",
		5 * time.Millisecond:    "5.0ms",
		30 * time.Microsecond:   "30µs",
	}
	for d, want := range cases {
		if got := Seconds(d); got != want {
			t.Errorf("Seconds(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.Row("alpha", 42)
	tb.Row("b", 3.14159)
	tb.Row("c", 2*time.Second)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Fatalf("header missing: %q", lines[0])
	}
	if !strings.Contains(out, "3.14") {
		t.Fatal("float formatting missing")
	}
	if !strings.Contains(out, "2.00s") {
		t.Fatal("duration formatting missing")
	}
	// Columns aligned: all rows same rendered width per column separator.
	if len(lines[1]) < len("name") {
		t.Fatal("separator too short")
	}
}
