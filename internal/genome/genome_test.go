package genome

import (
	"bytes"
	"math"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig(10_000)
	g1, err := Generate("x", cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := Generate("x", cfg)
	if !bytes.Equal(g1.Seq, g2.Seq) {
		t.Fatal("same seed produced different genomes")
	}
	cfg.Seed = 99
	g3, _ := Generate("x", cfg)
	if bytes.Equal(g1.Seq, g3.Seq) {
		t.Fatal("different seeds produced identical genomes")
	}
}

func TestGenerateLengthAndAlphabet(t *testing.T) {
	g, err := Generate("x", DefaultConfig(5_000))
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Seq) != 5_000 {
		t.Fatalf("len = %d", len(g.Seq))
	}
	for i, b := range g.Seq {
		switch b {
		case 'A', 'C', 'G', 'T':
		default:
			t.Fatalf("invalid base %q at %d", b, i)
		}
	}
}

func TestGenerateGCBias(t *testing.T) {
	cfg := DefaultConfig(50_000)
	cfg.RepeatFraction = 0
	cfg.GC = 0.7
	g, _ := Generate("x", cfg)
	gc := 0
	for _, b := range g.Seq {
		if b == 'G' || b == 'C' {
			gc++
		}
	}
	frac := float64(gc) / float64(len(g.Seq))
	if math.Abs(frac-0.7) > 0.02 {
		t.Fatalf("GC fraction %.3f, want ~0.7", frac)
	}
}

func TestGenerateRepeatsIncreaseDuplication(t *testing.T) {
	// Count distinct 21-mers: a repeat-heavy genome must have fewer.
	distinct := func(repeatFrac float64) int {
		cfg := DefaultConfig(60_000)
		cfg.RepeatFraction = repeatFrac
		g, err := Generate("x", cfg)
		if err != nil {
			t.Fatal(err)
		}
		const k = 21
		seen := map[string]bool{}
		for i := 0; i+k <= len(g.Seq); i++ {
			seen[string(g.Seq[i:i+k])] = true
		}
		return len(seen)
	}
	plain := distinct(0)
	repetitive := distinct(0.5)
	if repetitive >= plain {
		t.Fatalf("repeat genome has %d distinct 21-mers, plain has %d", repetitive, plain)
	}
	if float64(repetitive) > 0.8*float64(plain) {
		t.Fatalf("repeats too weak: %d vs %d distinct", repetitive, plain)
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []Config{
		{Length: 0, GC: 0.5},
		{Length: 100, GC: 0},
		{Length: 100, GC: 0.5, RepeatFraction: 0.99},
		{Length: 100, GC: 0.5, RepeatFraction: 0.2, RepeatMinLen: 10, RepeatMaxLen: 5},
	}
	for i, cfg := range bad {
		if _, err := Generate("x", cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestSimulateReadsCoverage(t *testing.T) {
	g, _ := Generate("x", DefaultConfig(50_000))
	for _, cov := range []float64{5, 30} {
		reads, err := SimulateReads(g, cov, DefaultLongReads())
		if err != nil {
			t.Fatal(err)
		}
		bases := 0
		for _, r := range reads {
			bases += len(r.Seq)
		}
		got := float64(bases) / float64(len(g.Seq))
		if got < cov || got > cov*1.15 {
			t.Errorf("coverage %.1f: achieved %.2f", cov, got)
		}
	}
}

func TestSimulateReadsLongLengthDistribution(t *testing.T) {
	g, _ := Generate("x", DefaultConfig(200_000))
	prof := DefaultLongReads()
	reads, err := SimulateReads(g, 20, prof)
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) < 100 {
		t.Fatalf("only %d reads", len(reads))
	}
	sum, varied := 0, false
	for _, r := range reads {
		sum += len(r.Seq)
		if len(r.Seq) != len(reads[0].Seq) {
			varied = true
		}
	}
	mean := float64(sum) / float64(len(reads))
	if mean < float64(prof.MeanLen)*0.7 || mean > float64(prof.MeanLen)*1.3 {
		t.Errorf("mean read length %.0f, want ~%d", mean, prof.MeanLen)
	}
	if !varied {
		t.Error("long reads should have varying lengths")
	}
}

func TestSimulateReadsShortFixedLength(t *testing.T) {
	g, _ := Generate("x", DefaultConfig(50_000))
	reads, err := SimulateReads(g, 5, DefaultShortReads())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reads {
		if len(r.Seq) != 150 {
			t.Fatalf("short read length %d, want 150", len(r.Seq))
		}
		if len(r.Qual) != len(r.Seq) {
			t.Fatal("quality length mismatch")
		}
	}
}

func TestSimulateReadsErrors(t *testing.T) {
	g, _ := Generate("x", DefaultConfig(100_000))
	prof := DefaultShortReads()
	prof.ErrRate = 0.05
	prof.AmbigRate = 0.01
	reads, err := SimulateReads(g, 3, prof)
	if err != nil {
		t.Fatal(err)
	}
	mismatches, ns, total := 0, 0, 0
	for _, r := range reads {
		total += len(r.Seq)
		for _, b := range r.Seq {
			if b == 'N' {
				ns++
			}
		}
	}
	_ = mismatches
	nRate := float64(ns) / float64(total)
	if nRate < 0.005 || nRate > 0.02 {
		t.Errorf("N rate %.4f, want ~0.01", nRate)
	}
}

func TestSimulateReadsValidation(t *testing.T) {
	g, _ := Generate("x", DefaultConfig(1_000))
	if _, err := SimulateReads(g, 0, DefaultLongReads()); err == nil {
		t.Error("zero coverage should error")
	}
	bad := DefaultLongReads()
	bad.MeanLen = 0
	if _, err := SimulateReads(g, 1, bad); err == nil {
		t.Error("zero mean length should error")
	}
	bad = DefaultLongReads()
	bad.ErrRate = 0.9
	if _, err := SimulateReads(g, 1, bad); err == nil {
		t.Error("error rate 0.9 should error")
	}
}

func TestTable1Registry(t *testing.T) {
	ds := Table1()
	if len(ds) != 6 {
		t.Fatalf("%d datasets, want 6", len(ds))
	}
	wantNames := []string{
		"E. coli 30X", "P. aeruginosa 30X", "V. vulnificus 30X",
		"A. baumannii 30X", "C. elegans 40X", "H. sapien 54X",
	}
	for i, d := range ds {
		if d.Name != wantNames[i] {
			t.Errorf("dataset %d = %q, want %q", i, d.Name, wantNames[i])
		}
		if d.Coverage <= 0 || d.ScaledGenomeLen <= 0 {
			t.Errorf("%s: bad config", d.Name)
		}
	}
	if len(SmallDatasets()) != 4 || len(LargeDatasets()) != 2 {
		t.Error("small/large split wrong")
	}
	if _, err := DatasetByName("E. coli 30X"); err != nil {
		t.Error(err)
	}
	if _, err := DatasetByName("bogus"); err == nil {
		t.Error("unknown dataset should error")
	}
}

func TestDatasetReadsScaled(t *testing.T) {
	d, _ := DatasetByName("A. baumannii 30X")
	reads, err := d.Reads(0.05)
	if err != nil {
		t.Fatal(err)
	}
	bases := 0
	for _, r := range reads {
		bases += len(r.Seq)
	}
	// 80k * 0.05 = 4000 -> floored at 2000; coverage 30 => ~120k bases.
	if bases < 50_000 || bases > 300_000 {
		t.Fatalf("scaled dataset has %d bases", bases)
	}
	if _, err := d.Reads(0); err == nil {
		t.Error("zero scale should error")
	}
	// Determinism across calls.
	again, _ := d.Reads(0.05)
	if len(again) != len(reads) || !bytes.Equal(again[0].Seq, reads[0].Seq) {
		t.Error("dataset generation is not deterministic")
	}
}
