// Package genome synthesizes reference genomes and sequencing reads.
//
// The paper evaluates on six real datasets (Table I) up to the 317 GB
// H. sapiens 54× FASTQ. Those inputs are a data gate for this reproduction,
// so the package substitutes synthetic equivalents that preserve exactly the
// properties every measured quantity depends on:
//
//   - coverage (how many times each genomic k-mer is resampled),
//   - read length distribution (3rd-generation long reads, §VI),
//   - repeat structure of the genome (the source of k-mer/minimizer skew
//     that drives the paper's load-imbalance results, Table III),
//   - total input volume (scaled down by a documented factor).
//
// Generation is fully deterministic given a seed.
package genome

import (
	"fmt"
	"math"
	"math/rand"

	"dedukt/internal/fastq"
)

// Config controls synthetic genome generation.
type Config struct {
	// Length is the genome length in bases.
	Length int
	// RepeatFraction is the fraction of the genome covered by copies of
	// repeat units (0 = uniform random genome). Higher values produce the
	// heavier k-mer multiplicity skew of complex genomes.
	RepeatFraction float64
	// RepeatMinLen and RepeatMaxLen bound the length of each repeat unit.
	RepeatMinLen, RepeatMaxLen int
	// RepeatCopies is the number of copies per repeat family (default 10).
	// Keeping per-family copy number fixed while the number of families
	// scales with genome length makes k-mer multiplicities scale with the
	// genome — matching how the per-rank hot-k-mer share behaves on the
	// full-size inputs rather than concentrating whole-genome multiplicity
	// into a scaled-down rank.
	RepeatCopies int
	// RepeatDivergence is the per-base substitution rate applied to each
	// repeat copy (default 0.02), modelling diverged repeat families.
	RepeatDivergence float64
	// GC is the target G+C fraction of random sequence (0.5 = unbiased).
	GC float64
	// Seed makes generation reproducible.
	Seed int64
}

// DefaultConfig returns a bacteria-like configuration of the given length.
func DefaultConfig(length int) Config {
	return Config{
		Length:         length,
		RepeatFraction: 0.05,
		RepeatMinLen:   200,
		RepeatMaxLen:   2000,
		GC:             0.5,
		Seed:           1,
	}
}

func (c Config) validate() error {
	if c.Length <= 0 {
		return fmt.Errorf("genome: non-positive length %d", c.Length)
	}
	if c.RepeatFraction < 0 || c.RepeatFraction > 0.95 {
		return fmt.Errorf("genome: repeat fraction %.2f outside [0, 0.95]", c.RepeatFraction)
	}
	if c.GC <= 0 || c.GC >= 1 {
		return fmt.Errorf("genome: GC %.2f outside (0,1)", c.GC)
	}
	if c.RepeatFraction > 0 && (c.RepeatMinLen <= 0 || c.RepeatMaxLen < c.RepeatMinLen) {
		return fmt.Errorf("genome: invalid repeat unit bounds [%d,%d]", c.RepeatMinLen, c.RepeatMaxLen)
	}
	return nil
}

// Genome is a synthetic reference sequence.
type Genome struct {
	Name string
	Seq  []byte
}

// Generate builds a synthetic genome: a random ACGT backbone with repeat
// units copied to random positions until RepeatFraction of the genome is
// repeat-derived. Repeats are copied from a small dictionary of units, so
// k-mers inside them recur genome-wide — the behaviour that makes minimizer
// partitions skewed on real genomes.
func Generate(name string, cfg Config) (*Genome, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	seq := make([]byte, cfg.Length)
	for i := range seq {
		seq[i] = randBase(rng, cfg.GC)
	}
	if cfg.RepeatFraction > 0 {
		copies := cfg.RepeatCopies
		if copies <= 0 {
			copies = 10
		}
		div := cfg.RepeatDivergence
		if div == 0 {
			div = 0.02
		}
		avgUnit := (cfg.RepeatMinLen + cfg.RepeatMaxLen) / 2
		target := int(cfg.RepeatFraction * float64(cfg.Length))
		nUnits := target / (avgUnit * copies)
		if nUnits < 1 {
			nUnits = 1
		}
		placed := 0
		for u := 0; u < nUnits || placed < target; u++ {
			ulen := cfg.RepeatMinLen
			if cfg.RepeatMaxLen > cfg.RepeatMinLen {
				ulen += rng.Intn(cfg.RepeatMaxLen - cfg.RepeatMinLen)
			}
			if ulen >= cfg.Length {
				break
			}
			unit := make([]byte, ulen)
			for j := range unit {
				unit[j] = randBase(rng, cfg.GC)
			}
			for c := 0; c < copies && placed < target+avgUnit; c++ {
				pos := rng.Intn(cfg.Length - ulen)
				copy(seq[pos:], unit)
				if div > 0 {
					// Diverge this copy from the family consensus.
					for j := pos; j < pos+ulen; j++ {
						if rng.Float64() < div {
							seq[j] = randBase(rng, cfg.GC)
						}
					}
				}
				placed += ulen
			}
			if placed >= target {
				break
			}
		}
	}
	return &Genome{Name: name, Seq: seq}, nil
}

func randBase(rng *rand.Rand, gc float64) byte {
	if rng.Float64() < gc {
		if rng.Intn(2) == 0 {
			return 'G'
		}
		return 'C'
	}
	if rng.Intn(2) == 0 {
		return 'A'
	}
	return 'T'
}

// ReadModel selects the sequencing technology being simulated.
type ReadModel int

const (
	// ShortReads models 2nd-generation sequencing: fixed-length reads
	// (typically 100–250 bp).
	ShortReads ReadModel = iota
	// LongReads models 3rd-generation sequencing: log-normally distributed
	// lengths in the 1,000–100,000 bp range (§VI). This is the regime of
	// the paper's diBELLA-derived pipeline.
	LongReads
)

func (m ReadModel) String() string {
	switch m {
	case ShortReads:
		return "short"
	case LongReads:
		return "long"
	default:
		return fmt.Sprintf("ReadModel(%d)", int(m))
	}
}

// ReadProfile describes the simulated sequencer.
type ReadProfile struct {
	Model ReadModel
	// MeanLen is the mean read length in bases.
	MeanLen int
	// Sigma is the log-normal shape parameter for LongReads (ignored for
	// ShortReads). Typical third-generation runs have sigma ≈ 0.4–0.6.
	Sigma float64
	// ErrRate is the per-base substitution error probability.
	ErrRate float64
	// AmbigRate is the per-base probability of an 'N' call, exercising the
	// pipelines' invalid-base handling.
	AmbigRate float64
	// ForwardOnly disables strand sampling. By default half the reads are
	// reverse-complemented, as a real sequencer samples both strands.
	ForwardOnly bool
	// Seed makes simulation reproducible.
	Seed int64
}

// DefaultLongReads returns a PacBio-like profile.
func DefaultLongReads() ReadProfile {
	return ReadProfile{Model: LongReads, MeanLen: 3000, Sigma: 0.5, ErrRate: 0.002, Seed: 2}
}

// DefaultShortReads returns an Illumina-like profile.
func DefaultShortReads() ReadProfile {
	return ReadProfile{Model: ShortReads, MeanLen: 150, ErrRate: 0.001, Seed: 2}
}

func (p ReadProfile) validate() error {
	if p.MeanLen <= 0 {
		return fmt.Errorf("genome: non-positive mean read length %d", p.MeanLen)
	}
	if p.ErrRate < 0 || p.ErrRate > 0.5 {
		return fmt.Errorf("genome: error rate %.3f outside [0, 0.5]", p.ErrRate)
	}
	if p.AmbigRate < 0 || p.AmbigRate > 0.5 {
		return fmt.Errorf("genome: ambiguity rate %.3f outside [0, 0.5]", p.AmbigRate)
	}
	return nil
}

// SimulateReads samples reads from g to the requested coverage depth
// (total read bases ≈ coverage × genome length). Read start positions are
// uniform; lengths follow the profile; substitution and N errors are applied
// per base.
func SimulateReads(g *Genome, coverage float64, p ReadProfile) ([]fastq.Record, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if coverage <= 0 {
		return nil, fmt.Errorf("genome: non-positive coverage %.2f", coverage)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	targetBases := int(coverage * float64(len(g.Seq)))
	var out []fastq.Record
	bases := 0
	for i := 0; bases < targetBases; i++ {
		rlen := p.sampleLen(rng)
		if rlen > len(g.Seq) {
			rlen = len(g.Seq)
		}
		start := 0
		if len(g.Seq) > rlen {
			start = rng.Intn(len(g.Seq) - rlen)
		}
		seq := make([]byte, rlen)
		copy(seq, g.Seq[start:start+rlen])
		if !p.ForwardOnly && rng.Intn(2) == 1 {
			reverseComplement(seq)
		}
		qual := sampleQualities(rng, rlen)
		applyErrors(rng, seq, qual, p)
		out = append(out, fastq.Record{
			ID:   fmt.Sprintf("%s_read%d", g.Name, i),
			Seq:  seq,
			Qual: qual,
		})
		bases += rlen
	}
	return out, nil
}

// sampleQualities draws per-base phred scores: a high plateau (~38) with
// small jitter, decaying toward ~8 over the last 5% of the read — the
// degraded 3' tail real chemistry produces. Base-call errors are sampled
// from these scores in applyErrors, so quality trimming (fastq.TrimQuality)
// genuinely removes the error-dense region.
func sampleQualities(rng *rand.Rand, n int) []byte {
	const (
		plateau = 38
		tailMin = 8
		offset  = 33 // Sanger phred offset
	)
	qual := make([]byte, n)
	tail := n / 20
	if tail < 1 {
		tail = 1
	}
	for i := range qual {
		q := float64(plateau) + rng.NormFloat64()*2
		if left := n - i; left <= tail {
			// Linear decay across the tail.
			frac := float64(left) / float64(tail)
			q = tailMin + (q-tailMin)*frac
		}
		if q < 2 {
			q = 2
		}
		if q > 41 {
			q = 41
		}
		qual[i] = byte(int(q) + offset)
	}
	return qual
}

func (p ReadProfile) sampleLen(rng *rand.Rand) int {
	switch p.Model {
	case ShortReads:
		return p.MeanLen
	case LongReads:
		// Log-normal with the requested mean: mean = exp(mu + sigma^2/2).
		mu := math.Log(float64(p.MeanLen)) - p.Sigma*p.Sigma/2
		l := int(math.Exp(rng.NormFloat64()*p.Sigma + mu))
		if l < 100 {
			l = 100
		}
		return l
	default:
		panic(fmt.Sprintf("genome: unknown read model %d", int(p.Model)))
	}
}

// reverseComplement flips seq to the opposite strand in place.
func reverseComplement(seq []byte) {
	comp := func(b byte) byte {
		switch b {
		case 'A':
			return 'T'
		case 'T':
			return 'A'
		case 'C':
			return 'G'
		case 'G':
			return 'C'
		default:
			return b
		}
	}
	for i, j := 0, len(seq)-1; i <= j; i, j = i+1, j-1 {
		seq[i], seq[j] = comp(seq[j]), comp(seq[i])
	}
}

// applyErrors introduces base-call errors: each base errs with probability
// max(ErrRate, 10^(-q/10)) — the configured floor or what its quality score
// claims, whichever is larger — so low-quality tails are error-dense.
func applyErrors(rng *rand.Rand, seq, qual []byte, p ReadProfile) {
	const bases = "ACGT"
	for i := range seq {
		if p.AmbigRate > 0 && rng.Float64() < p.AmbigRate {
			seq[i] = 'N'
			continue
		}
		prob := p.ErrRate
		if q := float64(qual[i]) - 33; q < 45 {
			if fromQ := pow10neg(q / 10); fromQ > prob {
				prob = fromQ
			}
		}
		if prob > 0 && rng.Float64() < prob {
			// Substitute with one of the three other bases.
			b := seq[i]
			for {
				nb := bases[rng.Intn(4)]
				if nb != b {
					seq[i] = nb
					break
				}
			}
		}
	}
}

// pow10neg returns 10^(-x).
func pow10neg(x float64) float64 { return math.Exp(-x * math.Ln10) }
