package genome

import (
	"testing"

	"dedukt/internal/dna"
	"dedukt/internal/fastq"
	"dedukt/internal/kmer"
)

func TestQualityModelShape(t *testing.T) {
	g, _ := Generate("q", DefaultConfig(60_000))
	prof := DefaultLongReads()
	prof.MeanLen = 1_000
	reads, err := SimulateReads(g, 5, prof)
	if err != nil {
		t.Fatal(err)
	}
	var headSum, tailSum, headN, tailN int
	for _, r := range reads {
		if len(r.Qual) < 200 {
			continue
		}
		for i := 0; i < 100; i++ {
			headSum += fastq.Phred(r.Qual[i])
			headN++
		}
		for i := len(r.Qual) - 10; i < len(r.Qual); i++ {
			tailSum += fastq.Phred(r.Qual[i])
			tailN++
		}
	}
	if headN == 0 {
		t.Fatal("no long reads sampled")
	}
	headAvg := float64(headSum) / float64(headN)
	tailAvg := float64(tailSum) / float64(tailN)
	if headAvg < 30 {
		t.Fatalf("head quality %.1f, want plateau ≈38", headAvg)
	}
	if tailAvg >= headAvg-5 {
		t.Fatalf("tail quality %.1f not degraded vs head %.1f", tailAvg, headAvg)
	}
}

func TestErrorsConcentrateInLowQualityTail(t *testing.T) {
	// Compare each read against the genome: mismatches must be denser in
	// the degraded tail than in the plateau.
	cfg := DefaultConfig(50_000)
	cfg.RepeatFraction = 0
	g, _ := Generate("q", cfg)
	prof := DefaultLongReads()
	prof.MeanLen = 1_500
	prof.ErrRate = 0.001
	prof.ForwardOnly = true // alignable by construction
	reads, err := SimulateReads(g, 8, prof)
	if err != nil {
		t.Fatal(err)
	}
	ref := string(g.Seq)
	var headErr, headN, tailErr, tailN int
	for _, r := range reads {
		pos := alignPrefix(ref, r.Seq)
		if pos < 0 {
			continue
		}
		n := len(r.Seq)
		tail := n / 20
		for i := 0; i < n; i++ {
			mismatch := r.Seq[i] != ref[pos+i]
			if i >= n-tail {
				tailN++
				if mismatch {
					tailErr++
				}
			} else {
				headN++
				if mismatch {
					headErr++
				}
			}
		}
	}
	if headN == 0 || tailN == 0 {
		t.Fatal("alignment failed for all reads")
	}
	headRate := float64(headErr) / float64(headN)
	tailRate := float64(tailErr) / float64(tailN)
	if tailRate < 4*headRate {
		t.Fatalf("tail error rate %.4f not ≫ head %.4f", tailRate, headRate)
	}
}

// alignPrefix locates a read in the reference by its first 30 bases
// (error-free with high probability at plateau quality).
func alignPrefix(ref string, seq []byte) int {
	if len(seq) < 40 {
		return -1
	}
	idx := indexOf(ref, string(seq[:30]))
	if idx < 0 || idx+len(seq) > len(ref) {
		return -1
	}
	return idx
}

func indexOf(hay, needle string) int {
	for i := 0; i+len(needle) <= len(hay); i++ {
		if hay[i:i+len(needle)] == needle {
			return i
		}
	}
	return -1
}

func TestTrimmingReducesSingletons(t *testing.T) {
	// End-to-end value of quality trimming: counting trimmed reads must
	// produce fewer singleton (error) k-mers per base than raw reads.
	g, _ := Generate("q", DefaultConfig(40_000))
	prof := DefaultLongReads()
	prof.MeanLen = 800
	reads, err := SimulateReads(g, 10, prof)
	if err != nil {
		t.Fatal(err)
	}
	singletonRate := func(rs []fastq.Record) float64 {
		counts := map[dna.Kmer]int{}
		bases := 0
		for _, r := range rs {
			bases += len(r.Seq)
			kmer.ForEach(&dna.Random, r.Seq, 17, func(w dna.Kmer, _ int) { counts[w]++ })
		}
		singles := 0
		for _, c := range counts {
			if c == 1 {
				singles++
			}
		}
		return float64(singles) / float64(bases)
	}
	raw := singletonRate(reads)
	trimmed := singletonRate(fastq.TrimAll(reads, 20, 17))
	if trimmed >= raw {
		t.Fatalf("trimming did not reduce singleton rate: raw %.5f, trimmed %.5f", raw, trimmed)
	}
	t.Logf("singletons/base: raw %.5f -> trimmed %.5f", raw, trimmed)
}
