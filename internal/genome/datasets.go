package genome

import (
	"fmt"

	"dedukt/internal/fastq"
)

// Dataset mirrors one row of the paper's Table I, together with the scaled
// synthetic stand-in this reproduction uses. RealFastqMB records the paper's
// input size for reference; ScaledGenomeLen × Coverage determines how many
// read bases the synthetic equivalent contains.
//
// Scaling rationale (documented per the substitution rule): every reproduced
// metric — k-mer/supermer exchange counts per input base, communication
// volume reduction factors, load imbalance, phase-time *ratios* — is
// intensive in the input size; only absolute runtimes are extensive, and
// those are reported by the Summit cost model per processed base. The scaled
// genomes keep the paper's coverage, long-read profile, and an increasing
// repeat fraction from bacteria to human that reproduces the skew ordering
// of Table III.
type Dataset struct {
	// Name is the paper's short name, e.g. "E. coli 30X".
	Name string
	// Species is the full strain description from Table I.
	Species string
	// RealFastqMB is the paper's FASTQ size in megabytes.
	RealFastqMB int
	// Coverage is the sequencing depth (the "30X" in the name).
	Coverage float64
	// ScaledGenomeLen is the synthetic genome length used here.
	ScaledGenomeLen int
	// RepeatFraction controls k-mer multiplicity skew.
	RepeatFraction float64
	// Large marks the two datasets the paper evaluates at 64–128 nodes
	// (C. elegans 40X and H. sapiens 54X).
	Large bool
}

// Table1 returns the six datasets of the paper's Table I with their scaled
// synthetic configurations.
func Table1() []Dataset {
	return []Dataset{
		{
			Name: "E. coli 30X", Species: "Escherichia coli MG1655 strain",
			RealFastqMB: 792, Coverage: 30,
			ScaledGenomeLen: 150_000, RepeatFraction: 0.06,
		},
		{
			Name: "P. aeruginosa 30X", Species: "Pseudomonas aeruginosa PAO1",
			RealFastqMB: 360, Coverage: 30,
			ScaledGenomeLen: 120_000, RepeatFraction: 0.05,
		},
		{
			Name: "V. vulnificus 30X", Species: "Vibrio vulnificus YJ016",
			RealFastqMB: 297, Coverage: 30,
			ScaledGenomeLen: 100_000, RepeatFraction: 0.08,
		},
		{
			Name: "A. baumannii 30X", Species: "Acinetobacter baumannii",
			RealFastqMB: 249, Coverage: 30,
			ScaledGenomeLen: 80_000, RepeatFraction: 0.05,
		},
		{
			Name: "C. elegans 40X", Species: "Caenorhabditis elegans Bristol mutant strain",
			RealFastqMB: 8_900, Coverage: 40,
			ScaledGenomeLen: 250_000, RepeatFraction: 0.15, Large: true,
		},
		{
			Name: "H. sapien 54X", Species: "Homo sapiens",
			RealFastqMB: 317_000, Coverage: 54,
			ScaledGenomeLen: 400_000, RepeatFraction: 0.45, Large: true,
		},
	}
}

// DatasetByName finds a Table I dataset by its short name.
func DatasetByName(name string) (Dataset, error) {
	for _, d := range Table1() {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("genome: unknown dataset %q", name)
}

// SmallDatasets returns the four bacterial datasets the paper evaluates on
// 16 nodes (Figs. 6a, 8a).
func SmallDatasets() []Dataset {
	var out []Dataset
	for _, d := range Table1() {
		if !d.Large {
			out = append(out, d)
		}
	}
	return out
}

// LargeDatasets returns C. elegans 40X and H. sapien 54X (Figs. 6b, 7, 8b).
func LargeDatasets() []Dataset {
	var out []Dataset
	for _, d := range Table1() {
		if d.Large {
			out = append(out, d)
		}
	}
	return out
}

// RealBases estimates the paper input's nucleotide count: a FASTQ record
// stores each base twice (sequence + quality) plus headers, so bases ≈
// file size / 2.
func (d Dataset) RealBases() float64 { return float64(d.RealFastqMB) * 1e6 / 2 }

// Reads synthesizes the dataset's scaled read set at the given size scale
// (1.0 = the registry's scaled size; 0.1 = a further 10× reduction for quick
// tests). The long-read profile matches the paper's third-generation inputs.
func (d Dataset) Reads(scale float64) ([]fastq.Record, error) {
	if scale <= 0 {
		return nil, fmt.Errorf("genome: non-positive scale %f", scale)
	}
	glen := int(float64(d.ScaledGenomeLen) * scale)
	if glen < 2_000 {
		glen = 2_000
	}
	cfg := Config{
		Length:         glen,
		RepeatFraction: d.RepeatFraction,
		RepeatMinLen:   200,
		RepeatMaxLen:   1500,
		GC:             0.5,
		Seed:           seedFor(d.Name),
	}
	g, err := Generate(d.Name, cfg)
	if err != nil {
		return nil, err
	}
	prof := DefaultLongReads()
	// Scaled runs shorten the reads (still "long" relative to k): at the
	// paper's 3 kb mean a 10^-4-scale input would hold so few reads that
	// 2,688-rank partitions become read-granular, an imbalance artifact
	// the real runs (thousands of reads per rank) do not have. 150-base
	// reads with a narrow spread keep every partition within a few percent
	// of the mean at the default scales.
	prof.MeanLen = 150
	prof.Sigma = 0.3
	prof.Seed = seedFor(d.Name) + 1
	return SimulateReads(g, d.Coverage, prof)
}

// seedFor derives a stable per-dataset seed from the name.
func seedFor(name string) int64 {
	var h int64 = 1469598103934665603
	for i := 0; i < len(name); i++ {
		h ^= int64(name[i])
		h *= 1099511628211
	}
	if h < 0 {
		h = -h
	}
	return h
}
