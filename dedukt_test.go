package dedukt_test

import (
	"os"
	"path/filepath"
	"testing"

	"dedukt"
)

func TestFacadeCountQuick(t *testing.T) {
	d, err := dedukt.DatasetByName("A. baumannii 30X")
	if err != nil {
		t.Fatal(err)
	}
	reads, err := d.Reads(0.05)
	if err != nil {
		t.Fatal(err)
	}
	opts := dedukt.DefaultOptions(1)
	if err := dedukt.Validate(opts); err != nil {
		t.Fatal(err)
	}
	res, err := dedukt.Count(reads, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalKmers == 0 || res.DistinctKmers == 0 {
		t.Fatalf("nothing counted: %+v", res)
	}
	if res.Histogram.Total() != res.TotalKmers {
		t.Fatal("histogram inconsistent with totals")
	}
}

func TestFacadeKmerRoundTrip(t *testing.T) {
	w, err := dedukt.ParseKmer("GATTACAGATTACA")
	if err != nil {
		t.Fatal(err)
	}
	if got := dedukt.KmerString(w, 14); got != "GATTACAGATTACA" {
		t.Fatalf("round trip = %q", got)
	}
	if _, err := dedukt.ParseKmer("GANTT"); err == nil {
		t.Fatal("invalid base should error")
	}
}

func TestFacadeDatasets(t *testing.T) {
	if len(dedukt.Datasets()) != 6 {
		t.Fatal("expected the six Table I datasets")
	}
	if _, err := dedukt.DatasetByName("nope"); err == nil {
		t.Fatal("unknown dataset should error")
	}
}

func TestFacadeLayouts(t *testing.T) {
	if dedukt.SummitGPU(16).Ranks() != 96 {
		t.Fatal("GPU layout ranks wrong")
	}
	if dedukt.SummitCPU(16).Ranks() != 672 {
		t.Fatal("CPU layout ranks wrong")
	}
}

func TestFacadeOrderings(t *testing.T) {
	for _, name := range []string{"value", "kmc2", "hashed"} {
		if _, err := dedukt.OrderingByName(name); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := dedukt.OrderingByName("bogus"); err == nil {
		t.Fatal("unknown ordering should error")
	}
}

func TestFacadeReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.fastq")
	if err := os.WriteFile(path, []byte("@r1\nACGTACGTACGTACGTACGT\n+\nIIIIIIIIIIIIIIIIIIII\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	reads, err := dedukt.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) != 1 || string(reads[0].Seq) != "ACGTACGTACGTACGTACGT" {
		t.Fatalf("reads = %+v", reads)
	}
	if _, err := dedukt.ReadFile(filepath.Join(dir, "missing.fastq")); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestFacadeModesDiffer(t *testing.T) {
	if dedukt.KmerMode == dedukt.SupermerMode {
		t.Fatal("modes must differ")
	}
	if dedukt.KmerMode.String() != "kmer" || dedukt.SupermerMode.String() != "supermer" {
		t.Fatal("mode names wrong")
	}
}

func TestFacadeCountLocalWideK(t *testing.T) {
	reads := []dedukt.Read{
		{ID: "a", Seq: []byte("ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT")}, // 48 bases
		{ID: "b", Seq: []byte("ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT")},
	}
	const k = 45
	tab, err := dedukt.CountLocal(reads, k, false)
	if err != nil {
		t.Fatal(err)
	}
	// Each read yields 4 k-mers (48-45+1), duplicated across the two reads.
	if tab.Len() != 4 {
		t.Fatalf("distinct = %d, want 4", tab.Len())
	}
	if tab.TotalCount() != 8 {
		t.Fatalf("total = %d, want 8", tab.TotalCount())
	}
	if _, err := dedukt.CountLocal(reads, 65, false); err == nil {
		t.Fatal("k=65 should be rejected")
	}
	if _, err := dedukt.CountLocal(reads, 0, false); err == nil {
		t.Fatal("k=0 should be rejected")
	}
}
