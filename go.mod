module dedukt

go 1.22
