package dedukt_test

import (
	"fmt"

	"dedukt"
)

// Counting the k-mers of a handful of reads on a simulated 1-node machine.
func ExampleCount() {
	reads := []dedukt.Read{
		{ID: "r1", Seq: []byte("ACGTACGTACGTACGTACGTACGT")},
		{ID: "r2", Seq: []byte("ACGTACGTACGTACGTACGTACGT")},
	}
	opts := dedukt.DefaultOptions(1)
	res, err := dedukt.Count(reads, opts)
	if err != nil {
		panic(err)
	}
	fmt.Println("distinct:", res.DistinctKmers)
	fmt.Println("total:", res.TotalKmers)
	// Output:
	// distinct: 4
	// total: 16
}

// Packing and decoding k-mers with the default (paper) encoding.
func ExampleParseKmer() {
	w, _ := dedukt.ParseKmer("GATTACA")
	fmt.Println(dedukt.KmerString(w, 7))
	// Output: GATTACA
}

// Serial wide-k counting beyond the distributed pipeline's k ≤ 32.
func ExampleCountLocal() {
	reads := []dedukt.Read{
		{ID: "r", Seq: []byte("ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT")}, // 40 bases
	}
	tab, err := dedukt.CountLocal(reads, 36, false)
	if err != nil {
		panic(err)
	}
	fmt.Println("distinct 36-mers:", tab.Len())
	// Output: distinct 36-mers: 4
}

// The paper's machine configurations.
func ExampleSummitGPU() {
	fmt.Println(dedukt.SummitGPU(64).Ranks(), "GPU ranks")
	fmt.Println(dedukt.SummitCPU(64).Ranks(), "CPU ranks")
	// Output:
	// 384 GPU ranks
	// 2688 CPU ranks
}
