// Package dedukt is a distributed-memory k-mer counter with simulated GPU
// acceleration and supermer-compressed communication — a from-scratch Go
// reproduction of "Distributed-Memory k-mer Counting on GPUs" (Nisa,
// Pandey, Ellis, Oliker, Buluç, Yelick — IPDPS 2021).
//
// This package is the stable public facade; the implementation lives in
// the internal packages (see DESIGN.md for the full inventory):
//
//   - internal/dna, kmer, minimizer, kcount — the counting algorithms;
//   - internal/gpusim, mpisim, cluster — the simulated Summit substrate;
//   - internal/pipeline — the four end-to-end counters;
//   - internal/genome, fastq — synthetic datasets and I/O;
//   - internal/expt — the paper's tables and figures.
//
// # Quick start
//
//	reads, _ := dedukt.ReadFile("reads.fastq")
//	res, err := dedukt.Count(reads, dedukt.DefaultOptions(4))
//	if err != nil { ... }
//	fmt.Println(res.DistinctKmers, res.Modeled.Total())
//
// See examples/ for complete programs.
package dedukt

import (
	"fmt"
	"io"

	"dedukt/internal/cluster"
	"dedukt/internal/dna"
	"dedukt/internal/fastq"
	"dedukt/internal/genome"
	"dedukt/internal/kcount"
	"dedukt/internal/minimizer"
	"dedukt/internal/pipeline"
	recov "dedukt/internal/recover"
	"dedukt/internal/spectrum"
)

// Core types, re-exported from the implementation packages. External callers
// use them through these names; the internal import paths stay private.
type (
	// Read is one sequencing read (ID, bases, optional qualities).
	Read = fastq.Record
	// Options configures a counting run; see DefaultOptions.
	Options = pipeline.Config
	// Result is the outcome of a run: histogram, phase breakdown, volumes.
	Result = pipeline.Result
	// Mode selects the exchanged unit (KmerMode or SupermerMode).
	Mode = pipeline.Mode
	// Layout describes the simulated machine.
	Layout = cluster.Layout
	// Histogram is a k-mer frequency spectrum.
	Histogram = kcount.Histogram
	// Dataset is a scaled synthetic equivalent of a paper dataset.
	Dataset = genome.Dataset
	// Kmer is a 2-bit-packed k-mer word.
	Kmer = dna.Kmer
	// Source yields reads one at a time for CountStream; see OpenStream.
	Source = fastq.Source
	// CkptConfig (Options.Ckpt) enables round-granularity checkpointing
	// and rank-death recovery for CountStream; see Resume.
	CkptConfig = pipeline.CkptConfig
	// Cursor is a replayable position in a read stream; CkptConfig.Reopen
	// receives one to fast-forward the input on resume or replay.
	Cursor = fastq.Cursor
	// InputFile fingerprints one input path (path and size) so a
	// checkpoint refuses to resume over changed inputs.
	InputFile = recov.InputFile
)

// Exchange modes.
const (
	// KmerMode ships individual packed k-mers (the paper's Alg. 1).
	KmerMode = pipeline.KmerMode
	// SupermerMode ships minimizer-partitioned supermers (Alg. 2) —
	// the paper's headline optimization.
	SupermerMode = pipeline.SupermerMode
)

// SummitGPU returns the paper's GPU machine configuration: nodes × 6
// simulated V100 ranks with the calibrated Summit fabric.
func SummitGPU(nodes int) Layout { return cluster.SummitGPU(nodes) }

// SummitCPU returns the paper's CPU baseline configuration: nodes × 42
// Power9 core ranks.
func SummitCPU(nodes int) Layout { return cluster.SummitCPU(nodes) }

// DefaultOptions returns the paper's operating point — k=17, supermers with
// m=7 and window 15, the random base encoding — on a GPU machine of the
// given node count.
func DefaultOptions(nodes int) Options {
	return pipeline.Default(cluster.SummitGPU(nodes), pipeline.SupermerMode)
}

// Count runs the distributed counting pipeline over the reads and returns
// the global result. Counting is bit-exact (validated against a serial
// oracle); timing is Summit-projected by the calibrated cost models.
func Count(reads []Read, opts Options) (*Result, error) {
	return pipeline.Run(opts, reads)
}

// CountStream runs the counting pipeline over a read source without
// materializing the input: ranks pull bounded chunks on demand and the
// live working set stays under Options.MemBudgetBytes regardless of
// input size. The counted spectrum is bit-identical to Count over the
// same reads. Features that need the whole input up front
// (BalancedPartition, FilterSingletons) are rejected.
func CountStream(src Source, opts Options) (*Result, error) {
	return pipeline.RunStream(opts, src)
}

// Resume continues an interrupted CountStream run from the checkpoint
// directory in opts.Ckpt.Dir. The options must match the checkpointed
// run (k, mode, engine, ranks, inputs — validated against the manifest's
// fingerprint); opts.Ckpt.Reopen supplies the fast-forwarded source. The
// completed spectrum is bit-identical to an unfaulted run over the same
// reads.
func Resume(opts Options) (*Result, error) {
	return pipeline.ResumeStream(opts)
}

// OpenStream opens FASTQ/FASTA files as one concatenated read source for
// CountStream. Gzip compression is detected per file by magic bytes, so
// mixed plain and compressed inputs work regardless of suffix. Close the
// stream when done.
func OpenStream(paths ...string) (*fastq.Stream, error) {
	return fastq.OpenStream(paths...)
}

// ReadFile loads every read of a FASTQ or FASTA file (".gz" supported).
func ReadFile(path string) ([]Read, error) {
	r, closer, err := fastq.Open(path)
	if err != nil {
		return nil, err
	}
	defer closer.Close()
	var out []Read
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec.Clone())
	}
}

// Datasets returns the scaled synthetic equivalents of the paper's Table I.
func Datasets() []Dataset { return genome.Table1() }

// DatasetByName finds a Table I dataset ("E. coli 30X", "H. sapien 54X", ...).
func DatasetByName(name string) (Dataset, error) { return genome.DatasetByName(name) }

// KmerString decodes a packed k-mer of length k counted under the default
// (random) encoding.
func KmerString(w Kmer, k int) string { return w.String(&dna.Random, k) }

// ParseKmer encodes an ACGT string of length ≤ 32 under the default
// encoding.
func ParseKmer(s string) (Kmer, error) { return dna.KmerFromString(&dna.Random, s) }

// OrderingByName returns a minimizer ordering for Options.Ord: "value"
// (the paper's random-encoding order), "kmc2", or "hashed".
func OrderingByName(name string) (minimizer.Ordering, error) {
	return minimizer.ByName(name, &dna.Random)
}

// WideTable is the serial counter for wide k-mers (32 < k ≤ 64).
type WideTable = kcount.WideTable

// SpectrumModel is a fitted k-mer frequency spectrum (coverage peak, error
// component, genome-size and repeat estimates).
type SpectrumModel = spectrum.Model

// FitSpectrum analyzes a counted histogram (§II-A's genome profiling).
func FitSpectrum(h Histogram) (SpectrumModel, error) { return spectrum.Fit(h) }

// CountLocal counts k-mers serially on the local machine for any k ≤ 64 —
// no distributed simulation, no cost model. It extends the library beyond
// the paper's k ≤ 32 distributed pipeline for long-read workloads that use
// larger k. canonical folds reverse complements together.
func CountLocal(reads []Read, k int, canonical bool) (*WideTable, error) {
	if k <= 0 || k > dna.Max128K {
		return nil, fmt.Errorf("dedukt: k=%d outside (0,%d]", k, dna.Max128K)
	}
	seqs := make([][]byte, len(reads))
	for i, r := range reads {
		seqs[i] = r.Seq
	}
	return kcount.CountWide(&dna.Random, seqs, k, canonical), nil
}

// Validate checks opts without running anything.
func Validate(opts Options) error { return opts.Validate() }

// Version identifies this reproduction.
const Version = "1.0.0"
