// Commvolume studies the supermer communication-volume trade-off of §IV:
// it sweeps the minimizer length m and the window size w over a synthetic
// read set and reports, for each configuration, the number of supermers,
// their average length, the byte reduction over k-mer shipping, and the
// minimizer-partition imbalance — reproducing the §IV-A worked example's
// arithmetic and the §IV-D theoretical analysis at realistic sizes.
//
// Run with: go run ./examples/commvolume
package main

import (
	"fmt"
	"log"

	"dedukt/internal/dna"
	"dedukt/internal/genome"
	"dedukt/internal/kernels"
	"dedukt/internal/minimizer"
	"dedukt/internal/stats"
)

const (
	k     = 17
	ranks = 96
)

func main() {
	log.SetFlags(0)

	g, err := genome.Generate("sweep", genome.DefaultConfig(100_000))
	if err != nil {
		log.Fatal(err)
	}
	prof := genome.DefaultLongReads()
	prof.MeanLen = 2_000
	reads, err := genome.SimulateReads(g, 20, prof)
	if err != nil {
		log.Fatal(err)
	}
	var seqs [][]byte
	bases := 0
	for _, r := range reads {
		seqs = append(seqs, r.Seq)
		bases += len(r.Seq)
	}
	fmt.Printf("input: %d reads, %s bases, k=%d, %d ranks\n\n", len(reads), stats.Count(uint64(bases)), k, ranks)

	// Sweep m at the paper's window (15), then sweep the window at m=7.
	fmt.Println("minimizer length sweep (window=15):")
	sweep(seqs, []cfg{{5, 15}, {7, 15}, {9, 15}, {11, 15}})
	fmt.Println("\nwindow sweep (m=7):")
	sweep(seqs, []cfg{{7, 7}, {7, 15}, {7, 31}, {7, 63}})

	// The §IV-A worked example, at its exact parameters.
	fmt.Println("\n§IV-A worked example (k=8, m=4, lexicographic ordering, 19-base reads):")
	example()
}

type cfg struct{ m, w int }

func sweep(seqs [][]byte, cfgs []cfg) {
	t := stats.NewTable("m", "window", "supermers", "avg len (bases)", "byte reduction", "partition imbalance")
	for _, c := range cfgs {
		mc := minimizer.Config{K: k, M: c.m, Window: c.w, Ord: minimizer.Value{}}
		loads := make([]uint64, ranks)
		st, err := minimizer.Collect(&dna.Random, seqs, mc, func(s minimizer.Supermer) {
			loads[kernels.DestOf(uint64(s.Min), ranks)] += uint64(s.NKmers)
		})
		if err != nil {
			log.Fatal(err)
		}
		// Wire bytes: fixed stride per supermer (packed bases + length
		// byte, §IV-C) versus 8 bytes per k-mer.
		wire := kernels.SupermerWire{K: k, Window: c.w}
		supermerBytes := uint64(st.NSupermers * wire.Stride())
		kmerBytes := uint64(st.NKmers * 8)
		t.Row(c.m, c.w,
			stats.Count(uint64(st.NSupermers)),
			fmt.Sprintf("%.1f", st.AvgLen()),
			fmt.Sprintf("%.2f×", float64(kmerBytes)/float64(supermerBytes)),
			fmt.Sprintf("%.2f", stats.Imbalance(loads)))
	}
	fmt.Print(t)
}

// example reproduces the §IV-A arithmetic: a 19-base read parsed with k=8,
// m=4 under lexicographic ordering into 3 supermers ships 33 bases instead
// of 96 — a 2.9× reduction.
func example() {
	mc := minimizer.Config{K: 8, M: 4, Window: 1000, Ord: minimizer.Value{}}
	// Scan reads until one decomposes into exactly 3 maximal supermers.
	g, err := genome.Generate("ex", genome.Config{Length: 50_000, GC: 0.5, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	for off := 0; off+19 <= len(g.Seq); off += 19 {
		read := g.Seq[off : off+19]
		var sms []minimizer.Supermer
		if err := minimizer.BuildSequential(&dna.Lexicographic, read, mc, func(s minimizer.Supermer) {
			sms = append(sms, s)
		}); err != nil {
			log.Fatal(err)
		}
		if len(sms) != 3 {
			continue
		}
		total := 0
		for _, s := range sms {
			total += s.Len(mc.K)
		}
		kmerBases := (19 - mc.K + 1) * mc.K
		fmt.Printf("  read %s (19 bases)\n", read)
		for i, s := range sms {
			fmt.Printf("  supermer %d: %-12s (%d k-mers, minimizer %s)\n",
				i+1, s.Seq.String(&dna.Lexicographic), s.NKmers, s.Min.String(&dna.Lexicographic, mc.M))
		}
		fmt.Printf("  k-mer mode ships %d bases; supermers ship %d bases -> %.1f× reduction (paper: 96 -> 33, 2.9×)\n",
			kmerBases, total, float64(kmerBases)/float64(total))
		return
	}
	log.Fatal("no 3-supermer read found")
}
