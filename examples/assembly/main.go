// Assembly demonstrates the paper's flagship downstream application (§I:
// "genome and metagenome assembly"): simulate a sequencing run, count
// k-mers with the distributed supermer pipeline, prune error k-mers by
// count, build the weighted de Bruijn graph, and compact it into unitigs —
// then verify the unitigs reconstruct the genome.
//
// Run with: go run ./examples/assembly
package main

import (
	"fmt"
	"log"
	"strings"

	"dedukt/internal/cluster"
	"dedukt/internal/debruijn"
	"dedukt/internal/genome"
	"dedukt/internal/pipeline"
	"dedukt/internal/stats"
)

func main() {
	log.SetFlags(0)

	// 1. A repeat-free genome at high coverage with sequencing errors.
	const (
		genomeLen = 60_000
		coverage  = 30.0
		k         = 25
	)
	cfgG := genome.DefaultConfig(genomeLen)
	cfgG.RepeatFraction = 0 // repeats need resolution beyond unitigs
	g, err := genome.Generate("target", cfgG)
	if err != nil {
		log.Fatal(err)
	}
	prof := genome.DefaultLongReads()
	prof.MeanLen = 2_000
	prof.ErrRate = 0.003
	prof.ForwardOnly = true // single-strand assembly for clarity
	reads, err := genome.SimulateReads(g, coverage, prof)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Distributed k-mer counting, keeping the per-rank tables.
	opts := pipeline.Default(cluster.SummitGPU(2), pipeline.SupermerMode)
	opts.K = k
	opts.KeepTables = true
	res, err := pipeline.Run(opts, reads)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("counted %s k-mers (%s distinct) on %d ranks in %s projected\n",
		stats.Count(res.TotalKmers), stats.Count(res.DistinctKmers),
		res.Ranks, stats.Seconds(res.Modeled.Total()))

	// 3. Weighted de Bruijn graph with error pruning (count ≥ 4 at 30×:
	//    solid k-mers only).
	table := res.MergedTable()
	graph, err := debruijn.Build(opts.Enc, k, table, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %s solid k-mer nodes (pruned %s error k-mers)\n",
		stats.Count(uint64(graph.Nodes())), stats.Count(res.DistinctKmers-uint64(graph.Nodes())))

	// 4. Compact to unitigs and report assembly statistics.
	unitigs := graph.Unitigs()
	st := debruijn.Summarize(unitigs)
	fmt.Println()
	t := stats.NewTable("metric", "value")
	t.Row("unitigs", st.NUnitigs)
	t.Row("assembled bases", st.TotalBases)
	t.Row("longest unitig", st.LongestBases)
	t.Row("N50", st.N50)
	t.Row("genome length", genomeLen)
	fmt.Print(t)

	// 5. Validate: the longest unitigs must align exactly into the genome,
	//    and together recover almost all of it.
	ref := string(g.Seq)
	recovered := 0
	aligned := 0
	for _, u := range unitigs {
		if u.Len() < k {
			continue
		}
		if strings.Contains(ref, u.Seq) {
			aligned++
			recovered += u.Len()
		}
	}
	frac := float64(recovered) / float64(genomeLen)
	fmt.Printf("\n%d/%d unitigs align exactly to the reference, covering %.1f%% of it\n",
		aligned, len(unitigs), 100*frac)
	if frac < 0.95 {
		log.Fatalf("assembly recovered only %.1f%% of the genome", 100*frac)
	}
	fmt.Println("assembly recovers ≥95% of the genome from raw reads ✓")
}
