// Metagenome counts k-mers of a simulated microbial community and
// attributes abundance to each member species — the metagenome
// classification use case the paper's introduction motivates (§I, §II-A).
//
// Three synthetic "species" are mixed at different depths; the distributed
// pipeline counts the community's k-mers; each species' abundance is then
// estimated as the median counted multiplicity of the k-mers unique to its
// reference genome, and compared against the simulated truth.
//
// Run with: go run ./examples/metagenome
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"dedukt/internal/cluster"
	"dedukt/internal/dna"
	"dedukt/internal/fastq"
	"dedukt/internal/genome"
	"dedukt/internal/kcount"
	"dedukt/internal/kmer"
	"dedukt/internal/pipeline"
	"dedukt/internal/stats"
)

const k = 17

type member struct {
	name     string
	size     int
	depth    float64
	genome   *genome.Genome
	uniqueKm map[dna.Kmer]bool
}

func main() {
	log.SetFlags(0)

	community := []*member{
		{name: "species-A", size: 80_000, depth: 30},
		{name: "species-B", size: 60_000, depth: 10},
		{name: "species-C", size: 40_000, depth: 3},
	}

	// Build reference genomes and the community read set.
	var reads []fastq.Record
	for i, m := range community {
		cfg := genome.DefaultConfig(m.size)
		cfg.Seed = int64(100 + i)
		g, err := genome.Generate(m.name, cfg)
		if err != nil {
			log.Fatal(err)
		}
		m.genome = g
		prof := genome.DefaultLongReads()
		prof.MeanLen = 1_500
		prof.ErrRate = 0.002
		prof.Seed = int64(200 + i)
		rs, err := genome.SimulateReads(g, m.depth, prof)
		if err != nil {
			log.Fatal(err)
		}
		reads = append(reads, rs...)
	}
	markUniqueKmers(community)

	// Count the community's k-mers with the supermer pipeline. Canonical
	// matching is done on the reference side, since reads sample both
	// strands.
	cfg := pipeline.Default(cluster.SummitGPU(2), pipeline.KmerMode)
	cfg.K = k
	cfg.Canonical = true
	res, err := pipeline.Run(cfg, reads)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("community: %d reads, %s k-mer instances, %s distinct\n\n",
		len(reads), stats.Count(res.TotalKmers), stats.Count(res.DistinctKmers))

	// Recount into one table for lookup (the pipeline's result is a
	// histogram; per-k-mer queries use the library's serial counter),
	// folding reverse complements together since reads sample both strands.
	seqs := make([][]byte, len(reads))
	for i, r := range reads {
		seqs[i] = r.Seq
	}
	counts := make(map[dna.Kmer]uint32)
	for w, c := range kcount.SerialCount(&dna.Random, seqs, k) {
		counts[w.Canonical(&dna.Random, k)] += c
	}

	t := stats.NewTable("species", "genome", "true depth", "estimated", "rel. error")
	for _, m := range community {
		est := estimateDepth(m, counts)
		relErr := math.Abs(est-m.depth) / m.depth
		t.Row(m.name, stats.Count(uint64(m.size)), fmt.Sprintf("%.0f×", m.depth),
			fmt.Sprintf("%.1f×", est), fmt.Sprintf("%.0f%%", 100*relErr))
		if relErr > 0.35 {
			log.Fatalf("%s: abundance estimate %.1f too far from truth %.0f", m.name, est, m.depth)
		}
	}
	fmt.Print(t)
	fmt.Println("\nall abundance estimates within 35% of simulated truth ✓")
}

// markUniqueKmers finds, for each member, canonical k-mers that occur in its
// genome and in no other member's genome.
func markUniqueKmers(community []*member) {
	owner := make(map[dna.Kmer]int)
	for i, m := range community {
		kmer.ForEach(&dna.Random, m.genome.Seq, k, func(w dna.Kmer, _ int) {
			can := w.Canonical(&dna.Random, k)
			if prev, ok := owner[can]; ok && prev != i {
				owner[can] = -1 // shared
			} else if !ok {
				owner[can] = i
			}
		})
	}
	for i, m := range community {
		m.uniqueKm = make(map[dna.Kmer]bool)
		for w, o := range owner {
			if o == i {
				m.uniqueKm[w] = true
			}
		}
		_ = i
	}
}

// estimateDepth returns the median counted multiplicity over the species'
// unique canonical k-mers (median is robust to repeats and errors). counts
// must already be canonical-keyed.
func estimateDepth(m *member, counts map[dna.Kmer]uint32) float64 {
	var vals []int
	for w, c := range counts {
		if m.uniqueKm[w] {
			vals = append(vals, int(c))
		}
	}
	if len(vals) == 0 {
		return 0
	}
	sort.Ints(vals)
	return float64(vals[len(vals)/2])
}
