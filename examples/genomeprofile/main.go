// Genomeprofile estimates genome size and sequencing error rate from a
// k-mer frequency spectrum — the classic downstream use of k-mer counting
// that motivates the paper (§II-A: histograms "are valuable for
// understanding the distributions of genomic subsequences").
//
// The example simulates a sequencing run with known ground truth, counts
// k-mers with the distributed GPU pipeline, locates the coverage peak of
// the spectrum, and derives:
//
//   - genome size ≈ total non-error k-mers / k-mer coverage at the peak,
//   - per-base error rate from the singleton fraction.
//
// Run with: go run ./examples/genomeprofile
package main

import (
	"fmt"
	"log"
	"math"

	"dedukt/internal/cluster"
	"dedukt/internal/genome"
	"dedukt/internal/pipeline"
	"dedukt/internal/spectrum"
	"dedukt/internal/stats"
)

func main() {
	log.SetFlags(0)

	const (
		genomeLen = 120_000
		coverage  = 25.0
		errRate   = 0.005
		k         = 17
	)
	cfgG := genome.DefaultConfig(genomeLen)
	cfgG.RepeatFraction = 0.08
	g, err := genome.Generate("profiled", cfgG)
	if err != nil {
		log.Fatal(err)
	}
	prof := genome.DefaultLongReads()
	prof.MeanLen = 2_000
	prof.ErrRate = errRate
	reads, err := genome.SimulateReads(g, coverage, prof)
	if err != nil {
		log.Fatal(err)
	}

	// Canonical counting folds the two strands together, so the spectrum
	// peaks at the full k-mer coverage rather than half of it per strand.
	cfg := pipeline.Default(cluster.SummitGPU(2), pipeline.KmerMode)
	cfg.K = k
	cfg.Canonical = true
	res, err := pipeline.Run(cfg, reads)
	if err != nil {
		log.Fatal(err)
	}
	h := res.Histogram

	// Fit the spectrum model: coverage peak, error component, repeat mass.
	model, err := spectrum.Fit(h)
	if err != nil {
		log.Fatal(err)
	}
	estSize := model.GenomeSizeKmers
	totalBases := 0
	for _, r := range reads {
		totalBases += len(r.Seq)
	}
	estErr := model.ErrorRate(k, uint64(totalBases))

	fmt.Printf("spectrum: %s distinct k-mers, %s instances, coverage peak %.1f×, repeat mass %.1f%%\n",
		stats.Count(h.Distinct()), stats.Count(h.Total()), model.KmerCoverage, 100*model.RepeatFraction)
	fmt.Println()
	t := stats.NewTable("quantity", "truth", "estimate", "rel. error")
	t.Row("genome size (bp)", genomeLen, fmt.Sprintf("%.0f", estSize),
		fmt.Sprintf("%.1f%%", 100*math.Abs(estSize-genomeLen)/genomeLen))
	t.Row("k-mer coverage", fmt.Sprintf("%.1f", coverage*(1-float64(k)/float64(prof.MeanLen))),
		fmt.Sprintf("%.1f", model.KmerCoverage), "-")
	t.Row("error rate", fmt.Sprintf("%.4f", errRate), fmt.Sprintf("%.4f", estErr),
		fmt.Sprintf("%.0f%%", 100*math.Abs(estErr-errRate)/errRate))
	fmt.Print(t)

	if math.Abs(estSize-genomeLen)/genomeLen > 0.15 {
		log.Fatal("genome size estimate off by more than 15% — check the spectrum")
	}
	fmt.Println("\ngenome-size estimate within 15% of truth ✓")
}
