// Quickstart: count k-mers in a small synthetic read set with the paper's
// default configuration (k=17, supermers with m=7, window=15, random base
// ordering) on a simulated 4-node Summit slice, and print the histogram and
// phase breakdown.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dedukt/internal/cluster"
	"dedukt/internal/genome"
	"dedukt/internal/pipeline"
	"dedukt/internal/stats"
)

func main() {
	log.SetFlags(0)

	// 1. Simulate a sequencing run: a 50 kb genome at 20× long-read
	//    coverage with a 1% substitution error rate.
	g, err := genome.Generate("demo", genome.DefaultConfig(50_000))
	if err != nil {
		log.Fatal(err)
	}
	prof := genome.DefaultLongReads()
	prof.MeanLen = 1000
	prof.ErrRate = 0.01
	reads, err := genome.SimulateReads(g, 20, prof)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d reads from a %d bp genome\n\n", len(reads), len(g.Seq))

	// 2. Count k-mers with the distributed supermer pipeline on 4 nodes
	//    (24 simulated V100s).
	cfg := pipeline.Default(cluster.SummitGPU(4), pipeline.SupermerMode)
	res, err := pipeline.Run(cfg, reads)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Report.
	fmt.Printf("counted %s k-mer instances (%s distinct) on %d ranks\n",
		stats.Count(res.TotalKmers), stats.Count(res.DistinctKmers), res.Ranks)
	fmt.Printf("exchanged %s supermers = %s (vs %s if shipping raw k-mers)\n",
		stats.Count(res.ItemsExchanged), stats.Bytes(res.PayloadBytes), stats.Bytes(res.TotalKmers*8))
	fmt.Printf("Summit-projected time: parse %s + exchange %s + count %s = %s\n\n",
		stats.Seconds(res.Modeled.Parse), stats.Seconds(res.Modeled.Exchange),
		stats.Seconds(res.Modeled.Count), stats.Seconds(res.Modeled.Total()))

	fmt.Println("k-mer frequency spectrum (first 30 classes):")
	for _, f := range res.Histogram.Frequencies() {
		if f > 30 {
			break
		}
		bar := int(res.Histogram.Counts[f] / 2_000)
		fmt.Printf("  %3dx %8d %s\n", f, res.Histogram.Counts[f], barString(bar))
	}
	fmt.Printf("\nsingletons (likely sequencing errors): %s\n", stats.Count(res.Histogram.Singletons()))
}

func barString(n int) string {
	if n > 60 {
		n = 60
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
