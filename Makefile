# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race fuzz bench experiments examples lint clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short live-fuzz pass over every fuzz target (seeds always run under `test`).
fuzz:
	$(GO) test -run xxx -fuzz FuzzReader -fuzztime 30s ./internal/fastq/
	$(GO) test -run xxx -fuzz FuzzSupermerInvariants -fuzztime 30s ./internal/minimizer/
	$(GO) test -run xxx -fuzz FuzzWireRoundTrip -fuzztime 30s ./internal/kernels/

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/experiments -run all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/genomeprofile
	$(GO) run ./examples/metagenome
	$(GO) run ./examples/commvolume
	$(GO) run ./examples/assembly

lint:
	gofmt -l .
	$(GO) vet ./...

clean:
	$(GO) clean ./...
