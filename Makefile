# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race fuzz fuzz-seeds bench bench-serve bench-pipeline serve-smoke cluster-smoke trace-smoke stream-smoke recover-smoke spill-smoke experiments examples lint ci clean

all: build test

# The full gate CI runs: build, formatting/vet lint, race-enabled tests,
# every fuzz target over its seed corpus, and the serving-, cluster-,
# tracing-, streaming-, recovery- and spill-layer smoke tests.
ci: build lint race fuzz-seeds serve-smoke cluster-smoke trace-smoke stream-smoke recover-smoke spill-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short live-fuzz pass over every fuzz target (seeds always run under `test`).
fuzz:
	$(GO) test -run xxx -fuzz FuzzReader -fuzztime 30s ./internal/fastq/
	$(GO) test -run xxx -fuzz FuzzStream -fuzztime 30s ./internal/fastq/
	$(GO) test -run xxx -fuzz FuzzSupermerInvariants -fuzztime 30s ./internal/minimizer/
	$(GO) test -run xxx -fuzz FuzzWireRoundTrip -fuzztime 30s ./internal/kernels/
	$(GO) test -run xxx -fuzz FuzzWireCorruptInput -fuzztime 30s ./internal/kernels/
	$(GO) test -run xxx -fuzz FuzzTraceparent -fuzztime 30s ./internal/obs/
	$(GO) test -run xxx -fuzz FuzzSpillBin -fuzztime 30s ./internal/pipeline/

# Run every fuzz target over its checked-in seed corpus only (fast,
# deterministic — what `ci` uses).
fuzz-seeds:
	$(GO) test -run 'Fuzz' ./internal/fastq/ ./internal/minimizer/ ./internal/kernels/ ./internal/obs/ ./internal/pipeline/

bench:
	$(GO) test -bench=. -benchmem ./...

# Serving-layer benchmarks, emitted as BENCH_serve.json so successive PRs
# have a perf trajectory to compare against: the kserve micro-benchmarks
# plus the cluster replica-scaling kload runs (scripts/bench_cluster.sh,
# 1/2/4 replicas behind kproxy).
bench-serve:
	$(GO) test -run xxx -bench BenchmarkKserve -benchmem ./internal/kserve/ | tee /dev/stderr | $(GO) run ./scripts/bench2json > BENCH_serve.micro.tmp
	sh scripts/bench_cluster.sh > BENCH_serve.cluster.tmp
	jq -s 'add' BENCH_serve.micro.tmp BENCH_serve.cluster.tmp > BENCH_serve.json
	rm -f BENCH_serve.micro.tmp BENCH_serve.cluster.tmp

# End-to-end pipeline benchmarks (internal/pipeline), emitted as
# BENCH_pipeline.json. BenchmarkPipelineSupermer is the nil-recorder
# baseline; BenchmarkPipelineTraced bounds the observability overhead.
bench-pipeline:
	$(GO) test -run xxx -bench BenchmarkPipeline -benchmem ./internal/pipeline/ | tee /dev/stderr | $(GO) run ./scripts/bench2json > BENCH_pipeline.json

# End-to-end smoke test of the query service: count a tiny synthetic
# dataset, serve the KCD with cmd/kserve, curl /kmer, /batch and /metrics,
# and assert the responses.
serve-smoke:
	sh scripts/serve_smoke.sh

# End-to-end smoke test of the serving cluster: 2 shards x 2 kserve
# replicas behind kproxy, a >=100k-lookup kload burst with a mid-run
# SIGKILL of one replica and an injected 50ms straggler, asserting zero
# errors, hedges fired, and the dead replica marked down. Artifacts (kload
# summary, proxy metrics, logs) land in CLUSTER_SMOKE_OUT (default: a temp
# dir) so CI can upload them.
cluster-smoke:
	sh scripts/cluster_smoke.sh

# End-to-end smoke test of the observability layer: run a small traced
# pipeline, validate the Chrome trace JSON with jq, and check the
# Prometheus metrics exposition. Artifacts land in TRACE_SMOKE_OUT
# (default: a temp dir) so CI can upload them.
trace-smoke:
	sh scripts/trace_smoke.sh

# End-to-end smoke test of streaming ingestion: gzip fixtures (one only
# detectable by magic bytes), a streamed multi-round run under a small
# memory budget, and jq equality of the streamed vs in-memory spectrum.
stream-smoke:
	sh scripts/stream_smoke.sh

# End-to-end smoke test of checkpoint/restart and shrink recovery: a
# seeded rank kill resumed with -resume and the same kill absorbed
# in-place by the survivors, both asserted bit-identical (via jq) to the
# unfaulted spectrum. Artifacts (recovery trace) land in
# RECOVER_SMOKE_OUT so CI can upload them.
recover-smoke:
	sh scripts/recover_smoke.sh

# End-to-end smoke test of out-of-core counting: a spilled two-pass run
# over 16 disk bins (alone and combined with -stream), asserted
# bit-identical (via jq) to the in-memory spectrum, with spill spans in
# the trace, spill series in the metrics, and no bin files left behind.
# Artifacts land in SPILL_SMOKE_OUT so CI can upload them.
spill-smoke:
	sh scripts/spill_smoke.sh

# Regenerate every table and figure of the paper (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/experiments -run all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/genomeprofile
	$(GO) run ./examples/metagenome
	$(GO) run ./examples/commvolume
	$(GO) run ./examples/assembly

lint:
	@unformatted="$$(gofmt -l .)"; if [ -n "$$unformatted" ]; then echo "gofmt needed:"; echo "$$unformatted"; exit 1; fi
	$(GO) vet ./...

clean:
	$(GO) clean ./...
