#!/bin/sh
# recover-smoke: end-to-end check of checkpoint/restart and shrink
# recovery. Generates a fixture, counts it unfaulted, then kills rank 1
# at round 9 two ways: with -no-shrink the run fails and is resumed with
# -resume; without it the survivors shrink and finish in one go. Both
# recovered spectra must be bit-identical (total, distinct, histogram,
# top k-mers) to the unfaulted run, and neither may be incomplete. Run
# via `make recover-smoke`; part of `make ci`. Artifacts (including the
# recovery trace) go to RECOVER_SMOKE_OUT (default: a temp dir removed
# on exit).
set -eu

keep=1
if [ -z "${RECOVER_SMOKE_OUT:-}" ]; then
    RECOVER_SMOKE_OUT=$(mktemp -d)
    keep=0
fi
mkdir -p "$RECOVER_SMOKE_OUT"
cleanup() {
    [ "$keep" = 0 ] && rm -rf "$RECOVER_SMOKE_OUT"
}
trap cleanup EXIT INT TERM

fail() {
    echo "recover-smoke: FAIL: $*" >&2
    exit 1
}

command -v jq >/dev/null 2>&1 || fail "jq not installed"

reads="$RECOVER_SMOKE_OUT/reads.fastq"
want="$RECOVER_SMOKE_OUT/want.json"
resumed="$RECOVER_SMOKE_OUT/resumed.json"
shrunk="$RECOVER_SMOKE_OUT/shrunk.json"
trace="$RECOVER_SMOKE_OUT/recover_trace.json"
# Shared flags: enough reads and small enough rounds that the kill at
# round 9 lands mid-run with checkpoints (rounds 2, 5, 8) before it.
run="-in $reads -stream -round-bases 500 -nodes 2 -json"

echo "recover-smoke: generating fixture"
go run ./cmd/genreads -genome-len 20000 -coverage 8 -mean-len 600 -seed 3 \
    -o "$reads" 2>/dev/null || fail "genreads"

echo "recover-smoke: unfaulted baseline run"
go run ./cmd/dedukt $run > "$want" 2>/dev/null || fail "unfaulted run"
jq -e '.rounds >= 12 and .incomplete == false' "$want" >/dev/null \
    || fail "baseline too short or incomplete (the kill round would not be reached)"

spectrum() {
    jq -S '[.total_kmers, .distinct_kmers, .histogram, .top_kmers]' "$1"
}

# --- Path 1: seeded kill under -no-shrink fails the run; -resume
# continues it from the checkpoint, bit-identical to the baseline.
echo "recover-smoke: seeded kill (rank 1, round 9) with -no-shrink"
if go run ./cmd/dedukt $run -ckpt-dir "$RECOVER_SMOKE_OUT/ckpt" -ckpt-rounds 3 \
    -no-shrink -fault-kill-rank 1 -fault-kill-round 9 \
    >/dev/null 2>"$RECOVER_SMOKE_OUT/killed.err"; then
    fail "killed run exited zero"
fi
grep -q "killed by injector" "$RECOVER_SMOKE_OUT/killed.err" \
    || fail "killed run did not report the injected kill"

echo "recover-smoke: resuming from the checkpoint"
go run ./cmd/dedukt $run -resume "$RECOVER_SMOKE_OUT/ckpt" -ckpt-rounds 3 \
    > "$resumed" 2>/dev/null || fail "resume run"
jq -e '.incomplete == false and .resumed == true' "$resumed" >/dev/null \
    || fail "resumed run incomplete or not flagged resumed"
[ "$(spectrum "$want")" = "$(spectrum "$resumed")" ] \
    || fail "resumed spectrum differs from the unfaulted spectrum"

# --- Path 2: the same kill with shrink recovery enabled completes in
# one invocation — survivors absorb rank 1's share and replay.
echo "recover-smoke: same kill with shrink recovery"
go run ./cmd/dedukt $run -ckpt-dir "$RECOVER_SMOKE_OUT/ckpt2" -ckpt-rounds 3 \
    -fault-kill-rank 1 -fault-kill-round 9 -trace-out "$trace" \
    > "$shrunk" 2>/dev/null || fail "shrink-recovery run exited nonzero"
jq -e '.incomplete == false and .recovered == true and .dead_ranks == [1]
       and .checkpoints > 0' "$shrunk" >/dev/null \
    || fail "shrink-recovery run incomplete or missing recovery fields"
[ "$(spectrum "$want")" = "$(spectrum "$shrunk")" ] \
    || fail "shrink-recovered spectrum differs from the unfaulted spectrum"

echo "recover-smoke: validating $trace"
jq -e . "$trace" >/dev/null || fail "recovery trace is not valid JSON"
jq -e '[.traceEvents[] | select(.ph == "i" and .name == "shrink_recovery")]
       | length > 0' "$trace" >/dev/null \
    || fail "recovery trace missing shrink_recovery instant"
jq -e '[.traceEvents[] | select(.ph == "i" and .name == "checkpoint_round")]
       | length > 0' "$trace" >/dev/null \
    || fail "recovery trace missing checkpoint_round instants"

echo "recover-smoke: PASS"
