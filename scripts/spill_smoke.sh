#!/bin/sh
# spill-smoke: end-to-end check of the out-of-core counting path. Builds
# a fixture with genreads, counts it with -spill-dir (two-pass disk
# bins), and asserts the spilled spectrum is identical to the in-memory
# run — alone and combined with -stream — that the spill spans and
# metrics show up in the observability artifacts, and that no bin files
# survive a successful run. Run via `make spill-smoke`; part of
# `make ci`. Artifacts go to SPILL_SMOKE_OUT (default: a temp dir
# removed on exit).
set -eu

keep=1
if [ -z "${SPILL_SMOKE_OUT:-}" ]; then
    SPILL_SMOKE_OUT=$(mktemp -d)
    keep=0
fi
mkdir -p "$SPILL_SMOKE_OUT"
cleanup() {
    [ "$keep" = 0 ] && rm -rf "$SPILL_SMOKE_OUT"
}
trap cleanup EXIT INT TERM

fail() {
    echo "spill-smoke: FAIL: $*" >&2
    exit 1
}

command -v jq >/dev/null 2>&1 || fail "jq not installed"

reads="$SPILL_SMOKE_OUT/reads.fastq.gz"
bins="$SPILL_SMOKE_OUT/bins"
mjson="$SPILL_SMOKE_OUT/memory.json"
sjson="$SPILL_SMOKE_OUT/spill.json"
ssjson="$SPILL_SMOKE_OUT/spill_stream.json"
trace="$SPILL_SMOKE_OUT/spill_trace.json"
metrics="$SPILL_SMOKE_OUT/spill_metrics.prom"

echo "spill-smoke: generating fixture"
go run ./cmd/genreads -genome-len 20000 -coverage 6 -seed 5 -o "$reads" \
    2>/dev/null || fail "genreads"

echo "spill-smoke: in-memory run"
go run ./cmd/dedukt -in "$reads" -nodes 2 -json \
    > "$mjson" 2>/dev/null || fail "dedukt in-memory run"

echo "spill-smoke: spilled run over 16 bins"
go run ./cmd/dedukt -in "$reads" -nodes 2 -spill-dir "$bins" -spill-bins 16 \
    -json > "$sjson" 2>/dev/null || fail "dedukt spilled run"
jq -e '.spilled == true and .spill_bins == 16 and .incomplete != true' \
    "$sjson" >/dev/null || fail "spilled JSON missing spill fields"

echo "spill-smoke: spilled+streamed run under a 4M budget"
go run ./cmd/dedukt -in "$reads" -nodes 2 -spill-dir "$bins" -spill-bins 16 \
    -stream -mem-budget 4M -json \
    > "$ssjson" 2>/dev/null || fail "dedukt spilled+streamed run"
jq -e '.spilled == true and .streamed == true and .rounds >= 2
       and .incomplete != true' \
    "$ssjson" >/dev/null || fail "spilled+streamed JSON missing fields"

echo "spill-smoke: comparing spectra"
mcount=$(jq -S '[.total_kmers, .distinct_kmers, .histogram]' "$mjson")
scount=$(jq -S '[.total_kmers, .distinct_kmers, .histogram]' "$sjson")
sscount=$(jq -S '[.total_kmers, .distinct_kmers, .histogram]' "$ssjson")
[ "$scount" = "$mcount" ] \
    || fail "spilled spectrum differs from in-memory spectrum"
[ "$sscount" = "$mcount" ] \
    || fail "spilled+streamed spectrum differs from in-memory spectrum"

echo "spill-smoke: checking bin hygiene"
leftover=$(find "$bins" -name '*.spill*' -o -name '*.partial' | wc -l)
[ "$leftover" = 0 ] || fail "successful runs left $leftover bin files in $bins"

# --- traced + metered spilled run: pass 1 must emit spill_write spans,
# pass 2 bin_count spans, and the registry must carry the spill series.
echo "spill-smoke: traced spilled run"
go run ./cmd/dedukt -in "$reads" -nodes 2 -spill-dir "$bins" -spill-bins 16 \
    -hist 0 -top 0 -trace-out "$trace" -metrics-out "$metrics" \
    >/dev/null 2>&1 || fail "dedukt traced spilled run"
jq -e . "$trace" >/dev/null || fail "spill trace is not valid JSON"
jq -e '[.traceEvents[] | select(.ph == "X" and .name == "spill_write")]
       | length > 0' \
    "$trace" >/dev/null || fail "trace missing spill_write spans"
jq -e '[.traceEvents[] | select(.ph == "X" and .name == "bin_count")]
       | length > 0' \
    "$trace" >/dev/null || fail "trace missing bin_count spans"
grep -q '^pipeline_spill_bytes_total [1-9]' "$metrics" \
    || fail "metrics missing pipeline_spill_bytes_total"
grep -q '^pipeline_spill_bins_total [1-9]' "$metrics" \
    || fail "metrics missing pipeline_spill_bins_total"

echo "spill-smoke: PASS"
