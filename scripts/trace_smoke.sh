#!/bin/sh
# trace-smoke: run a small traced pipeline with injected faults, validate
# the Chrome trace-event JSON with jq, and check the Prometheus metrics
# exposition and the -report output. Run via `make trace-smoke`; part of
# `make ci`. Artifacts are written to TRACE_SMOKE_OUT (default: a temp
# dir removed on exit) so CI can upload them.
set -eu

keep=1
if [ -z "${TRACE_SMOKE_OUT:-}" ]; then
    TRACE_SMOKE_OUT=$(mktemp -d)
    keep=0
fi
mkdir -p "$TRACE_SMOKE_OUT"
cleanup() {
    [ "$keep" = 0 ] && rm -rf "$TRACE_SMOKE_OUT"
}
trap cleanup EXIT INT TERM

fail() {
    echo "trace-smoke: FAIL: $*" >&2
    exit 1
}

command -v jq >/dev/null 2>&1 || fail "jq not installed"

trace="$TRACE_SMOKE_OUT/trace.json"
metrics="$TRACE_SMOKE_OUT/metrics.prom"
report="$TRACE_SMOKE_OUT/report.txt"

echo "trace-smoke: running a traced pipeline with injected faults"
go run ./cmd/dedukt -nodes 2 -hist 0 -top 0 \
    -fault-seed 1 -fault-delay 0.02 -fault-drop 0.02 \
    -report -trace-out "$trace" -metrics-out "$metrics" \
    > "$report" 2>&1 || { cat "$report" >&2; fail "dedukt traced run"; }

echo "trace-smoke: validating $trace"
jq -e . "$trace" >/dev/null || fail "trace is not valid JSON"
jq -e '.traceEvents | type == "array"' "$trace" >/dev/null \
    || fail "trace has no traceEvents array"
# At least one complete span per phase, each with a round arg.
for phase in parse stage_h2d exchange count; do
    jq -e --arg p "$phase" \
        '[.traceEvents[] | select(.ph == "X" and .name == $p)] | length > 0' \
        "$trace" >/dev/null || fail "trace has no $phase spans"
done
jq -e '[.traceEvents[] | select(.ph == "X") | .args.round] | all(. != null)' \
    "$trace" >/dev/null || fail "span missing round arg"
# Every rank got a named trace thread, and fault instants were recorded.
jq -e '[.traceEvents[] | select(.ph == "M" and .name == "thread_name")] | length == 12' \
    "$trace" >/dev/null || fail "expected 12 rank threads (2 nodes x 6 ranks)"
jq -e '[.traceEvents[] | select(.ph == "i")] | length > 0' \
    "$trace" >/dev/null || fail "no fault/retry instants recorded"

echo "trace-smoke: validating $metrics"
grep -q '^# TYPE pipeline_items_exchanged_total counter' "$metrics" \
    || fail "metrics missing pipeline_items_exchanged_total"
grep -q '^# TYPE mpisim_collectives_total counter' "$metrics" \
    || fail "metrics missing mpisim_collectives_total"
grep -q '^fault_injected_total{kind="drop"}' "$metrics" \
    || fail "metrics missing fault_injected_total"
grep -q '^gpusim_kernel_launches_total{kernel=' "$metrics" \
    || fail "metrics missing gpusim_kernel_launches_total"

echo "trace-smoke: validating -report output"
grep -q 'observability report:' "$report" || fail "-report printed no report"
grep -q 'slowest rank overall' "$report" || fail "-report missing slowest-rank attribution"

# --- overlapped schedule: a faulted multi-round run with -overlap must
# produce a valid trace whose retry spans nest inside their round's
# exchange span, report the modeled overlap split, and count exactly what
# the serial schedule counts.
otrace="$TRACE_SMOKE_OUT/overlap_trace.json"
oreport="$TRACE_SMOKE_OUT/overlap_report.txt"
ojson="$TRACE_SMOKE_OUT/overlap.json"
sjson="$TRACE_SMOKE_OUT/serial.json"
# The retry budget is raised above the default 2 so the run recovers
# fully: at these drop/corrupt rates a round can need several attempts,
# and an exhausted budget degrades the counts to a lower bound (exit 3),
# which would break the count-equality asserts below.
faults="-fault-seed 3 -fault-drop 0.05 -fault-corrupt 0.02 -max-retries 8"

echo "trace-smoke: running a faulted overlapped pipeline"
# shellcheck disable=SC2086
go run ./cmd/dedukt -nodes 2 -hist 0 -top 0 -round-bases 8000 -overlap \
    $faults -report -trace-out "$otrace" \
    > "$oreport" 2>&1 || { cat "$oreport" >&2; fail "dedukt overlapped run"; }
# shellcheck disable=SC2086
go run ./cmd/dedukt -nodes 2 -hist 0 -top 0 -round-bases 8000 -overlap \
    $faults -json > "$ojson" 2>/dev/null || fail "dedukt overlapped json run"
# shellcheck disable=SC2086
go run ./cmd/dedukt -nodes 2 -hist 0 -top 0 -round-bases 8000 \
    $faults -json > "$sjson" 2>/dev/null || fail "dedukt serial run"

echo "trace-smoke: validating $otrace"
jq -e . "$otrace" >/dev/null || fail "overlap trace is not valid JSON"
jq -e '[.traceEvents[] | select(.ph == "X" and .name == "retry")] | length > 0' \
    "$otrace" >/dev/null || fail "overlap trace has no retry spans"
# Every retry span nests inside an exchange span of the same rank & round.
jq -e '
    [.traceEvents[] | select(.ph == "X")] as $spans
    | [$spans[] | select(.name == "retry")]
    | all(. as $r
        | any($spans[];
            .name == "exchange" and .tid == $r.tid
            and .args.round == $r.args.round
            and .ts <= $r.ts and .ts + .dur >= $r.ts + $r.dur))' \
    "$otrace" >/dev/null || fail "retry span not nested in its exchange span"

echo "trace-smoke: validating overlapped report and counts"
grep -q 'modeled round pipeline: serial' "$oreport" \
    || fail "overlap report missing modeled round pipeline split"
jq -e '.overlap == true and .rounds >= 2 and .overlap_total_sec > 0' \
    "$ojson" >/dev/null || fail "overlap JSON report missing overlap fields"
ocount=$(jq '[.total_kmers, .distinct_kmers]' "$ojson")
scount=$(jq '[.total_kmers, .distinct_kmers]' "$sjson")
[ "$ocount" = "$scount" ] \
    || fail "overlap counts $ocount differ from serial counts $scount"

# --- hierarchical exchange + GPUDirect: the same faulted multi-round run
# through the two-stage exchange with staging elided must (a) record NO
# stage_h2d spans, (b) stage every round through the gather →
# leader_alltoall → scatter span triple, (c) count exactly what the flat
# serial run counts, and (d) report the collapsed fabric message count:
# 12 ranks at 6 per node is 2 leaders, so each round is 2² = 4 leader
# messages instead of 12² = 144.
htrace="$TRACE_SMOKE_OUT/hier_trace.json"
hmetrics="$TRACE_SMOKE_OUT/hier_metrics.prom"
hjson="$TRACE_SMOKE_OUT/hier.json"

echo "trace-smoke: running a faulted hierarchical + gpudirect pipeline"
# shellcheck disable=SC2086
go run ./cmd/dedukt -nodes 2 -hist 0 -top 0 -round-bases 8000 \
    -exchange hier -gpudirect \
    $faults -json -trace-out "$htrace" -metrics-out "$hmetrics" \
    > "$hjson" 2>/dev/null || fail "dedukt hierarchical run"

echo "trace-smoke: validating $htrace"
jq -e . "$htrace" >/dev/null || fail "hier trace is not valid JSON"
jq -e '[.traceEvents[] | select(.ph == "X" and .name == "stage_h2d")] | length == 0' \
    "$htrace" >/dev/null || fail "gpudirect trace still has stage_h2d spans"
for phase in gather leader_alltoall scatter; do
    jq -e --arg p "$phase" \
        '[.traceEvents[] | select(.ph == "X" and .name == $p)] | length > 0' \
        "$htrace" >/dev/null || fail "hier trace has no $phase spans"
done

echo "trace-smoke: validating hierarchical counts and message metric"
jq -e '.exchange == "hier"' "$hjson" >/dev/null \
    || fail "hier JSON report does not record the strategy"
hcount=$(jq '[.total_kmers, .distinct_kmers]' "$hjson")
[ "$hcount" = "$scount" ] \
    || fail "hier counts $hcount differ from flat serial counts $scount"
rounds=$(jq '.rounds' "$hjson")
want_msgs=$((4 * rounds))
got_msgs=$(awk '/^pipeline_exchange_messages_total\{strategy="hier"\}/ {print $2}' "$hmetrics")
[ "$got_msgs" = "$want_msgs" ] \
    || fail "hier message metric $got_msgs, want $want_msgs (4 per round x $rounds rounds)"

echo "trace-smoke: PASS"
