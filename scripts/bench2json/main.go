// Command bench2json converts `go test -bench` text output on stdin into a
// JSON array on stdout, one object per benchmark line:
//
//	go test -bench BenchmarkKserve -benchmem ./internal/kserve/ | go run ./scripts/bench2json
//
// Used by `make bench-serve` to emit BENCH_serve.json so successive PRs
// have a machine-readable perf trajectory.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

func main() {
	var out []result
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		r := result{Name: fields[0]}
		if i := strings.LastIndex(r.Name, "-"); i > 0 {
			if p, err := strconv.Atoi(r.Name[i+1:]); err == nil {
				r.Name, r.Procs = r.Name[:i], p
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r.Iterations = iters
		// Remaining fields come in (value, unit) pairs: 123 ns/op 45 B/op …
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = int64(v)
			case "allocs/op":
				r.AllocsPerOp = int64(v)
			}
		}
		out = append(out, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
}
