#!/bin/sh
# stream-smoke: end-to-end check of the streaming ingestion path. Builds
# gzip fixtures with genreads (one by .gz suffix, one by -gzip behind a
# plain name so magic-byte detection is exercised), streams them through
# dedukt under a small memory budget, and asserts the counted spectrum is
# identical to the in-memory run over the same files. Run via
# `make stream-smoke`; part of `make ci`. Artifacts go to
# STREAM_SMOKE_OUT (default: a temp dir removed on exit).
set -eu

keep=1
if [ -z "${STREAM_SMOKE_OUT:-}" ]; then
    STREAM_SMOKE_OUT=$(mktemp -d)
    keep=0
fi
mkdir -p "$STREAM_SMOKE_OUT"
cleanup() {
    [ "$keep" = 0 ] && rm -rf "$STREAM_SMOKE_OUT"
}
trap cleanup EXIT INT TERM

fail() {
    echo "stream-smoke: FAIL: $*" >&2
    exit 1
}

command -v jq >/dev/null 2>&1 || fail "jq not installed"

a="$STREAM_SMOKE_OUT/a.fastq.gz"
b="$STREAM_SMOKE_OUT/b.fastq"   # gzip content behind a plain name
sjson="$STREAM_SMOKE_OUT/stream.json"
mjson="$STREAM_SMOKE_OUT/memory.json"
trace="$STREAM_SMOKE_OUT/stream_trace.json"

echo "stream-smoke: generating gzip fixtures"
go run ./cmd/genreads -genome-len 20000 -coverage 6 -seed 3 -o "$a" \
    2>/dev/null || fail "genreads a"
go run ./cmd/genreads -genome-len 20000 -coverage 6 -seed 4 -gzip -o "$b" \
    2>/dev/null || fail "genreads b"
# The magic-detection fixture must really be gzip despite its name.
[ "$(head -c 2 "$b" | od -An -tx1 | tr -d ' \n')" = "1f8b" ] \
    || fail "-gzip did not compress $b"

echo "stream-smoke: streamed run under a 4M budget"
go run ./cmd/dedukt -in "$a,$b" -stream -mem-budget 4M -nodes 2 -json \
    > "$sjson" 2>/dev/null || fail "dedukt streamed run"
echo "stream-smoke: in-memory run over the same files"
go run ./cmd/dedukt -in "$a,$b" -nodes 2 -json \
    > "$mjson" 2>/dev/null || fail "dedukt in-memory run"

echo "stream-smoke: validating $sjson"
jq -e '.streamed == true and .rounds >= 2 and .input_reads > 0
       and .input_bases > 0 and .mem_budget_bytes == 4194304' \
    "$sjson" >/dev/null || fail "streamed JSON missing stream fields"
jq -e '.incomplete != true' "$sjson" >/dev/null \
    || fail "streamed run incomplete"

echo "stream-smoke: comparing spectra"
scount=$(jq -S '[.total_kmers, .distinct_kmers, .histogram]' "$sjson")
mcount=$(jq -S '[.total_kmers, .distinct_kmers, .histogram]' "$mjson")
[ "$scount" = "$mcount" ] \
    || fail "streamed spectrum differs from in-memory spectrum"

# --- traced streamed run: every executed round must show up as parse
# spans with round args, and the run must actually be multi-round.
echo "stream-smoke: traced streamed run"
go run ./cmd/dedukt -in "$a,$b" -stream -mem-budget 4M -nodes 2 \
    -hist 0 -top 0 -trace-out "$trace" \
    >/dev/null 2>&1 || fail "dedukt traced streamed run"
jq -e . "$trace" >/dev/null || fail "stream trace is not valid JSON"
jq -e '[.traceEvents[] | select(.ph == "X" and .name == "parse")]
       | length > 0 and all(.args.round != null)' \
    "$trace" >/dev/null || fail "stream trace missing parse spans with round args"
jq -e '[.traceEvents[] | select(.ph == "X" and .name == "parse") | .args.round]
       | max >= 1' \
    "$trace" >/dev/null || fail "streamed trace shows only one round"

echo "stream-smoke: PASS"
