#!/bin/sh
# serve-smoke: build cmd/kserve, serve a tiny synthetic KCD, and assert the
# point, batch, and metrics endpoints answer correctly. Run via
# `make serve-smoke`; part of `make ci`.
set -eu

tmp=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    [ -n "$pid" ] && wait "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

fail() {
    echo "serve-smoke: FAIL: $*" >&2
    [ -f "$tmp/kserve.log" ] && sed 's/^/serve-smoke: kserve: /' "$tmp/kserve.log" >&2
    exit 1
}

echo "serve-smoke: counting a tiny synthetic dataset"
go run ./cmd/dedukt -okcd "$tmp/smoke.kcd" -hist 0 -top 0 >/dev/null 2>&1 || fail "dedukt -okcd"

# Pick a known (k-mer, count) pair to assert against, straight from the KCD.
go run ./cmd/kmertools dump -db "$tmp/smoke.kcd" -n 2 > "$tmp/dump.tsv" || fail "kmertools dump"
KMER1=$(sed -n '1p' "$tmp/dump.tsv" | cut -f1)
COUNT1=$(sed -n '1p' "$tmp/dump.tsv" | cut -f2)
KMER2=$(sed -n '2p' "$tmp/dump.tsv" | cut -f1)
COUNT2=$(sed -n '2p' "$tmp/dump.tsv" | cut -f2)
[ -n "$KMER1" ] && [ -n "$COUNT2" ] || fail "could not extract sample k-mers from KCD"

echo "serve-smoke: building and starting kserve"
go build -o "$tmp/kserve" ./cmd/kserve || fail "go build ./cmd/kserve"
"$tmp/kserve" -kcd "$tmp/smoke.kcd" -addr 127.0.0.1:0 2> "$tmp/kserve.log" &
pid=$!

ADDR=""
i=0
while [ $i -lt 100 ]; do
    ADDR=$(sed -n 's/.*listening on //p' "$tmp/kserve.log" | head -n1)
    [ -n "$ADDR" ] && break
    kill -0 "$pid" 2>/dev/null || fail "kserve exited before listening"
    sleep 0.1
    i=$((i + 1))
done
[ -n "$ADDR" ] || fail "kserve never announced its address"
echo "serve-smoke: kserve is up on $ADDR"

# Point lookup returns the exact count the database holds.
curl -sf "http://$ADDR/kmer/$KMER1" | grep -q "\"count\":$COUNT1" \
    || fail "GET /kmer/$KMER1 did not report count $COUNT1"

# Batch lookup returns both counts; an absent-length query 400s.
curl -sf -X POST "http://$ADDR/batch" -d "{\"kmers\":[\"$KMER1\",\"$KMER2\"]}" > "$tmp/batch.json" \
    || fail "POST /batch"
grep -q "\"count\":$COUNT1" "$tmp/batch.json" || fail "/batch missing count $COUNT1"
grep -q "\"count\":$COUNT2" "$tmp/batch.json" || fail "/batch missing count $COUNT2"
code=$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/kmer/ACGT")
[ "$code" = "400" ] || fail "malformed k-mer returned $code, want 400"

# Histogram, top-N, health and metrics all answer.
curl -sf "http://$ADDR/histogram" | grep -q '"distinct"' || fail "/histogram"
curl -sf "http://$ADDR/topn?n=3" | grep -q '"kmers"' || fail "/topn"
curl -sf "http://$ADDR/healthz" | grep -q '"status":"ok"' || fail "/healthz"

# /metrics defaults to Prometheus text exposition with typed families.
curl -sf "http://$ADDR/metrics" > "$tmp/metrics.prom" || fail "/metrics"
grep -q '^# TYPE kserve_requests_total counter' "$tmp/metrics.prom" \
    || fail "/metrics missing TYPE kserve_requests_total"
grep -q '^kserve_shard_load_imbalance ' "$tmp/metrics.prom" \
    || fail "/metrics missing kserve_shard_load_imbalance"
grep -q 'kserve_batch_size_bucket{.*le="+Inf"}' "$tmp/metrics.prom" \
    || fail "/metrics missing kserve_batch_size histogram"

# The legacy JSON snapshot stays reachable under ?format=json.
curl -sf "http://$ADDR/metrics?format=json" > "$tmp/metrics.json" || fail "/metrics?format=json"
grep -q '"shard_load_imbalance"' "$tmp/metrics.json" || fail "/metrics json missing shard_load_imbalance"
grep -q '"per_shard"' "$tmp/metrics.json" || fail "/metrics json missing per_shard"
grep -q '"requests":' "$tmp/metrics.json" || fail "/metrics json missing requests"

echo "serve-smoke: PASS"
