#!/bin/sh
# bench-cluster: measure cluster serving throughput as the replica count
# scales (1 -> 2 -> 4 replicas of one shard behind kproxy), driven by a
# fixed closed-loop kload burst. Emits a JSON array of annotated kload
# summaries on stdout; `make bench-serve` merges it into BENCH_serve.json
# next to the kserve micro-benchmarks so successive PRs can compare the
# cluster trajectory too.
set -eu

tmp=$(mktemp -d)
pids=""
cleanup() {
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    for p in $pids; do wait "$p" 2>/dev/null || true; done
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

fail() {
    echo "bench-cluster: FAIL: $*" >&2
    exit 1
}

wait_addr() {
    i=0
    while [ $i -lt 100 ]; do
        addr=$(sed -n 's/.*listening on //p' "$1" | head -n1)
        if [ -n "$addr" ]; then echo "$addr"; return 0; fi
        kill -0 "$2" 2>/dev/null || return 1
        sleep 0.1
        i=$((i + 1))
    done
    return 1
}

go run ./cmd/dedukt -okcd "$tmp/bench.kcd" -hist 0 -top 0 >/dev/null 2>&1 || fail "dedukt -okcd"
go build -o "$tmp/kserve" ./cmd/kserve || fail "go build ./cmd/kserve"
go build -o "$tmp/kproxy" ./cmd/kproxy || fail "go build ./cmd/kproxy"
go build -o "$tmp/kload" ./cmd/kload || fail "go build ./cmd/kload"

for R in 1 2 4; do
    echo "bench-cluster: $R replica(s)" >&2
    seeds=""
    round_pids=""
    i=0
    while [ $i -lt "$R" ]; do
        "$tmp/kserve" -kcd "$tmp/bench.kcd" -addr 127.0.0.1:0 -replica-id "bench-$R-$i" \
            2> "$tmp/r$R$i.log" &
        pids="$pids $!"
        round_pids="$round_pids $!"
        addr=$(wait_addr "$tmp/r$R$i.log" "$!") || fail "replica $i of $R never listened"
        seeds="$seeds -replica $addr"
        i=$((i + 1))
    done
    # shellcheck disable=SC2086
    "$tmp/kproxy" -addr 127.0.0.1:0 $seeds 2> "$tmp/p$R.log" &
    pids="$pids $!"
    round_pids="$round_pids $!"
    paddr=$(wait_addr "$tmp/p$R.log" "$!") || fail "kproxy for $R replicas never listened"
    "$tmp/kload" -q -target "http://$paddr" -n 1500 -batch 64 -c 16 -warmup 200 \
        > "$tmp/load$R.json" || fail "kload against $R replicas"
    jq --arg r "$R" '. + {name: ("ClusterKloadZipf/replicas=" + $r), replicas: ($r | tonumber)}' \
        "$tmp/load$R.json" > "$tmp/out$R.json" || fail "jq annotate"
    for p in $round_pids; do kill "$p" 2>/dev/null || true; done
    for p in $round_pids; do wait "$p" 2>/dev/null || true; done
done

jq -s '.' "$tmp/out1.json" "$tmp/out2.json" "$tmp/out4.json"
