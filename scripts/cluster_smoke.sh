#!/bin/sh
# cluster-smoke: end-to-end proof of the serving cluster (internal/kcluster).
#
# Topology: 2 cluster shards x 2 kserve replicas behind one kproxy. One
# shard-0 replica is started with an injected 50ms straggler delay (-slow),
# so the proxy's latency-quantile hedging must fire; one shard-1 replica is
# SIGKILLed in the middle of a >=100k-lookup kload burst, so the proxy's
# retry path must absorb a replica death. The run passes only if kload
# reports zero request errors and zero per-key degradation markers, and the
# proxy's metrics show hedges fired and the killed replica down.
#
# The burst runs with distributed tracing on: kload samples 1-in-20
# requests, forwards W3C traceparent headers, and the proxy and replicas
# continue those traces. The per-process dumps are collected over
# /debug/trace, joined with `kmertools trace-join`, and the joined trace
# must show at least one trace ID crossing kload -> kproxy -> both shard-0
# replicas with the hedged attempt marked winner. kload also enforces a
# (generous) 2s:p99 SLO so the error-budget accounting path is exercised.
#
# Artifacts (kload summary, proxy metrics, process logs, joined trace) go
# to CLUSTER_SMOKE_OUT (default: a temp dir removed on exit) so CI can
# upload them. Run via `make cluster-smoke`; part of `make ci`.
set -eu

keep=1
if [ -z "${CLUSTER_SMOKE_OUT:-}" ]; then
    CLUSTER_SMOKE_OUT=$(mktemp -d)
    keep=0
fi
mkdir -p "$CLUSTER_SMOKE_OUT"
out="$CLUSTER_SMOKE_OUT"
bin=$(mktemp -d) # binaries and the KCD stay out of the uploaded artifacts
pids=""
cleanup() {
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    for p in $pids; do wait "$p" 2>/dev/null || true; done
    rm -rf "$bin"
    [ "$keep" = 0 ] && rm -rf "$out"
}
trap cleanup EXIT INT TERM

fail() {
    echo "cluster-smoke: FAIL: $*" >&2
    for f in "$out"/*.log; do
        [ -f "$f" ] && sed "s|^|cluster-smoke: $(basename "$f"): |" "$f" >&2
    done
    exit 1
}

# wait_addr LOGFILE PID: echo the "listening on" address once announced.
wait_addr() {
    i=0
    while [ $i -lt 100 ]; do
        addr=$(sed -n 's/.*listening on //p' "$1" | head -n1)
        if [ -n "$addr" ]; then echo "$addr"; return 0; fi
        kill -0 "$2" 2>/dev/null || return 1
        sleep 0.1
        i=$((i + 1))
    done
    return 1
}

echo "cluster-smoke: counting a tiny synthetic dataset"
go run ./cmd/dedukt -okcd "$bin/smoke.kcd" -hist 0 -top 0 >/dev/null 2>&1 || fail "dedukt -okcd"
go run ./cmd/kmertools dump -db "$bin/smoke.kcd" -n 1 > "$out/dump.tsv" || fail "kmertools dump"
KMER=$(cut -f1 "$out/dump.tsv")
COUNT=$(cut -f2 "$out/dump.tsv")
[ -n "$KMER" ] || fail "could not extract a sample k-mer from the KCD"

echo "cluster-smoke: building kserve, kproxy, kload"
go build -o "$bin/kserve" ./cmd/kserve || fail "go build ./cmd/kserve"
go build -o "$bin/kproxy" ./cmd/kproxy || fail "go build ./cmd/kproxy"
go build -o "$bin/kload" ./cmd/kload || fail "go build ./cmd/kload"

echo "cluster-smoke: starting 2 shards x 2 replicas (one 50ms straggler)"
# -trace-out (with the default -trace-sample 0) turns tracing on in
# continuation-only mode: the replica records spans for requests arriving
# with a sampled traceparent but never roots traces of its own, so the
# sampling decision stays with kload. Dumps are fetched live over
# /debug/trace; the exit files land in $bin and are discarded.
start_replica() { # name shard extra...
    name=$1; shard=$2; shift 2
    "$bin/kserve" -kcd "$bin/smoke.kcd" -addr 127.0.0.1:0 -shard "$shard" \
        -replica-id "$name" -trace-out "$bin/$name.exit-trace.json" "$@" 2> "$out/$name.log" &
    eval "${name}_pid=$!"
    pids="$pids $!"
    addr=$(wait_addr "$out/$name.log" "$!") || fail "$name never announced its address"
    eval "${name}_addr=$addr"
    echo "cluster-smoke: $name (shard $shard) on $addr"
}
start_replica r0a 0/2
start_replica r0b 0/2 -slow 50ms    # straggler: hedges must rescue its keys
start_replica r1a 1/2
start_replica r1b 1/2               # victim: killed mid-burst

"$bin/kproxy" -addr 127.0.0.1:0 -probe-interval 100ms -hedge-max 5ms \
    -trace-out "$bin/kproxy.exit-trace.json" \
    -replica "$r0a_addr" -replica "$r0b_addr" -replica "$r1a_addr" -replica "$r1b_addr" \
    2> "$out/kproxy.log" &
proxy_pid=$!
pids="$pids $proxy_pid"
PADDR=$(wait_addr "$out/kproxy.log" "$proxy_pid") || fail "kproxy never announced its address"
echo "cluster-smoke: kproxy on $PADDR"

# The registry must converge on ready (every shard has an Up replica).
i=0
while [ $i -lt 50 ]; do
    curl -sf "http://$PADDR/healthz" > "$out/healthz.json" 2>/dev/null \
        && [ "$(jq -r .status "$out/healthz.json")" = "ready" ] && break
    sleep 0.1
    i=$((i + 1))
done
[ "$(jq -r .status "$out/healthz.json" 2>/dev/null)" = "ready" ] || fail "cluster never became ready"

# A point lookup through the proxy returns the exact count the KCD holds.
curl -sf "http://$PADDR/kmer/$KMER" | jq -e ".count == $COUNT" >/dev/null \
    || fail "proxied GET /kmer/$KMER did not report count $COUNT"

echo "cluster-smoke: >=100k-lookup burst with a mid-run replica kill (traced, SLO 2s:p99)"
"$bin/kload" -q -target "http://$PADDR" -n 1800 -batch 64 -c 8 -warmup 100 \
    -trace-sample 20 -trace-out "$out/trace_kload.json" -slo 2s:p99 \
    > "$out/kload.json" 2> "$out/kload.log" &
load_pid=$!
sleep 1
kill -9 "$r1b_pid" 2>/dev/null || fail "victim replica already gone before the kill"
echo "cluster-smoke: killed shard-1 replica $r1b_addr mid-burst"
if ! wait "$load_pid"; then
    fail "kload exited nonzero: $(cat "$out/kload.json" 2>/dev/null)"
fi

jq -e '.errors == 0 and .key_errors == 0' "$out/kload.json" >/dev/null \
    || fail "kload saw errors: $(cat "$out/kload.json")"
jq -e '.lookups >= 100000' "$out/kload.json" >/dev/null \
    || fail "kload completed $(jq .lookups "$out/kload.json") lookups, want >= 100000"
echo "cluster-smoke: $(jq -r .lookups "$out/kload.json") lookups, 0 errors, p99 $(jq -r .latency.p99_us "$out/kload.json")us"

# The SLO accounting must be present, met (2s:p99 is deliberately
# generous), and carry the build stamp.
jq -e '.slo.met == true' "$out/kload.json" >/dev/null \
    || fail "SLO 2s:p99 not met: $(jq -c .slo "$out/kload.json")"
jq -e '.build.go_version != ""' "$out/kload.json" >/dev/null \
    || fail "kload summary is missing build info"
echo "cluster-smoke: SLO $(jq -r .slo.objective "$out/kload.json") met, burn rate $(jq -r .slo.budget_burn_rate "$out/kload.json")"

# The straggler forced hedging: the proxy must have fired hedged requests.
curl -sf "http://$PADDR/metrics" > "$out/kproxy_metrics.prom" || fail "kproxy /metrics"
hedges=$(awk '$1 == "kcluster_hedges_total" {print $2}' "$out/kproxy_metrics.prom")
[ -n "$hedges" ] && [ "$hedges" -gt 0 ] 2>/dev/null \
    || fail "kcluster_hedges_total = '$hedges', want > 0 under a 50ms straggler"
grep -q '^build_info{' "$out/kproxy_metrics.prom" \
    || fail "kproxy /metrics is missing build_info"
grep -q '^kcluster_stage_seconds_bucket{' "$out/kproxy_metrics.prom" \
    || fail "kproxy /metrics is missing kcluster_stage_seconds"

echo "cluster-smoke: joining per-process trace dumps"
curl -sf "http://$PADDR/debug/trace" > "$out/trace_kproxy.json" || fail "kproxy /debug/trace"
curl -sf "http://$r0a_addr/debug/trace" > "$out/trace_r0a.json" || fail "r0a /debug/trace"
curl -sf "http://$r0b_addr/debug/trace" > "$out/trace_r0b.json" || fail "r0b /debug/trace"
go run ./cmd/kmertools trace-join -o "$out/trace_joined.json" \
    "$out/trace_kload.json" "$out/trace_kproxy.json" "$out/trace_r0a.json" "$out/trace_r0b.json" \
    2>> "$out/kload.log" || fail "kmertools trace-join"

# At least one sampled request must appear as ONE trace ID crossing every
# process tier: the kload root, the kproxy routing spans, and — because the
# straggler forces a hedge to the other shard-0 replica — BOTH r0a and r0b.
jq -e '[.traceEvents[] | select(.ph == "X") | {t: .args.trace, p: .args.proc}]
       | group_by(.t) | map([.[].p] | unique)
       | map(select(contains(["kload", "kproxy", "r0a", "r0b"]))) | length >= 1' \
    "$out/trace_joined.json" >/dev/null \
    || fail "no joined trace spans kload+kproxy+r0a+r0b: $(jq -c '[.traceEvents[] | select(.ph == "X") | {t: .args.trace, p: .args.proc}] | group_by(.t) | map([.[].p] | unique)' "$out/trace_joined.json")"

# The hedged attempt that rescued a straggled sub-batch must be annotated
# as the winner on the proxy's upstream span.
jq -e '[.traceEvents[] | select(.ph == "X" and .args.hedged == "true" and .args.outcome == "winner")] | length >= 1' \
    "$out/trace_joined.json" >/dev/null \
    || fail "no hedged upstream attempt marked winner in the joined trace"
echo "cluster-smoke: joined trace has $(jq '[.traceEvents[] | select(.ph == "X")] | length' "$out/trace_joined.json") spans across $(jq '[.traceEvents[] | select(.ph == "M" and .name == "process_name")] | length' "$out/trace_joined.json") processes"

# The killed replica must be marked down in the cluster view.
i=0
while [ $i -lt 50 ]; do
    curl -sf "http://$PADDR/healthz" > "$out/healthz.json" 2>/dev/null \
        && [ "$(jq -r --arg a "$r1b_addr" '.replicas[] | select(.addr == $a) | .state' "$out/healthz.json")" = "down" ] \
        && break
    sleep 0.1
    i=$((i + 1))
done
[ "$(jq -r --arg a "$r1b_addr" '.replicas[] | select(.addr == $a) | .state' "$out/healthz.json")" = "down" ] \
    || fail "killed replica $r1b_addr never marked down: $(cat "$out/healthz.json")"

echo "cluster-smoke: PASS (hedges=$hedges)"
